//! Streaming scans: feed input in chunks, get globally-positioned matches.
//!
//! Every push executes one carry-propagating window per group: the chunk
//! is transposed, each group's *streaming* program (an untransformed
//! lowering with fixpoint loops — see DESIGN.md §10) runs over exactly
//! those bytes, and the bits that cross the chunk boundary travel in a
//! [`bitgen_ir::CarryState`] to the next push. Work per push is
//! O(chunk): no tail is retained, nothing is re-scanned, and no span
//! bound is needed — unbounded repetitions (`*`, `+`, `{n,}`) stream
//! like any other pattern. Results are bit-identical to batch
//! [`BitGen::find`] under every chunking.
//!
//! # Pushes are transactions
//!
//! Before any window executes, the scanner snapshots every group's carry
//! state; a push either commits whole (all groups' windows succeeded —
//! possibly after retries or CPU degradation under a [`RetryPolicy`] —
//! carries rotated, counters advanced, matches returned) or rolls back
//! whole (carries restored to the pre-push boundary, the
//! [`StreamScanner::metrics`] record untouched). Interrupts
//! ([`bitgen_exec::ExecError::Cancelled`],
//! [`bitgen_exec::ExecError::DeadlineExceeded`]) roll back and leave the
//! scanner usable; any other unrecovered failure rolls back and
//! *poisons* it — further pushes return [`Error::StreamPoisoned`] — but
//! the rolled-back state is still consistent, so
//! [`StreamScanner::checkpoint`] remains valid and [`BitGen::resume`]
//! rebuilds a live scanner from it.
//!
//! # Suspend and resume
//!
//! [`StreamScanner::checkpoint`] captures the stream at the current
//! chunk boundary as a versioned, self-describing [`StreamCheckpoint`]:
//! carry slots (checksummed per slot), byte/seconds counters, and an
//! engine fingerprint so the checkpoint only restores onto a compatible
//! streaming compile. `bitgrep --checkpoint FILE` builds on it to make
//! interrupted stdin/file scans restartable.

use crate::engine::BitGen;
use crate::error::Error;
use crate::session::ScanSession;
use crate::swap::StagedRules;
use bitgen_bitstream::BitStream;
use bitgen_exec::{ExecError, ExecMetrics, Metrics};
use bitgen_gpu::FaultPlan;
use bitgen_ir::{pretty, CancelToken, CarryState};
use std::time::Duration;

/// How a [`StreamScanner`] responds to a detected fault inside a push.
///
/// The default (`RetryPolicy::default()` == [`RetryPolicy::none`]) is
/// fail-fast: one attempt, no degradation — the push rolls back and the
/// scanner poisons, exactly the pre-policy behaviour. Production streams
/// typically want [`RetryPolicy::resilient`]: transient faults replay on
/// fresh scratch, persistent ones degrade the chunk to the reference
/// CPU interpreter (exact matches, surfaced via the `degraded` counter
/// of [`StreamScanner::metrics`] — never silent corruption).
///
/// Interrupts (cancellation, deadlines) are never retried or degraded:
/// the caller asked the scan to stop, and honouring that by rolling the
/// push back keeps the scanner resumable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executor attempts per group window (≥ 1; `0` is treated as
    /// `1` — a zero budget would make every window unexecutable, so
    /// both [`RetryPolicy::with_attempts`] and the push loop clamp it).
    /// Each retry restores the pre-window carry snapshot first.
    pub max_attempts: u32,
    /// After the attempts are exhausted, replay the chunk on the CPU
    /// reference interpreter instead of failing the push.
    pub degrade: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Fail-fast: one attempt, no degradation.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, degrade: false }
    }

    /// Recover-everything: three attempts, then CPU degradation.
    pub fn resilient() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, degrade: true }
    }

    /// Builder: sets the attempt budget. `0` is clamped to `1`: the
    /// budget counts *total* attempts (first try included), so a zero
    /// budget would leave every window unexecutable and fail each push
    /// before any work ran.
    pub fn with_attempts(mut self, max_attempts: u32) -> RetryPolicy {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Builder: sets whether exhausted windows degrade to the CPU.
    pub fn with_degrade(mut self, degrade: bool) -> RetryPolicy {
        self.degrade = degrade;
        self
    }
}

/// A fault armed on a scanner's upcoming windows (drill hook).
#[derive(Debug, Clone, Copy)]
struct StreamFaultArm {
    group: usize,
    plan: FaultPlan,
    /// Window executions of `group` still to be armed; `u32::MAX` means
    /// every one (a persistent fault).
    windows: u32,
}

/// Everything needed to undo a committed swap whose first post-swap
/// window fails unrecoverably: the previous generation's engine, its
/// boundary carries, and its per-group accounting. Held from
/// [`StreamScanner::commit_swap`] until the first post-swap push
/// commits; an unrecoverable failure in that window restores all of it
/// (instead of poisoning the scanner) so the old generation keeps
/// serving exactly as if the swap had never been committed.
#[derive(Debug)]
struct SwapRollback<'e> {
    engine: &'e BitGen,
    carries: Vec<CarryState>,
    ctas: Vec<ExecMetrics>,
    generation: u64,
}

/// Incremental scanner over a compiled engine.
///
/// Holds a [`ScanSession`] internally, so the per-push transpose and
/// executor buffers are reused across chunks, plus one [`CarryState`]
/// per group carrying the cross-chunk bits. See the
/// [module docs](self) for the push transaction and recovery contract.
///
/// # Examples
///
/// Unbounded patterns stream too — a match may grow across any number
/// of chunks before closing:
///
/// ```
/// use bitgen::BitGen;
///
/// let engine = BitGen::compile(&["a+b"])?;
/// let mut scanner = engine.streamer()?;
/// let mut ends = scanner.push(b"xxaa")?;
/// ends.extend(scanner.push(b"ab.")?);
/// assert_eq!(ends, vec![5]);
/// # Ok::<(), bitgen::Error>(())
/// ```
#[derive(Debug)]
pub struct StreamScanner<'e> {
    session: ScanSession<'e>,
    /// Cross-chunk carry, one per group's streaming program.
    carries: Vec<CarryState>,
    /// The unified per-scan record, advanced once per committed push.
    /// `bytes_scanned` doubles as the consumed-byte offset;
    /// `metrics.ctas` holds one per-group accumulator whose counted
    /// events sum across pushes.
    metrics: Metrics,
    /// Fault response policy for pushes.
    retry: RetryPolicy,
    /// Set after an unrecovered failure; fences `push` off.
    poisoned: bool,
    /// Armed drill fault, if any.
    fault: Option<StreamFaultArm>,
    /// Rule-set generation this stream is serving; bumped by each
    /// committed [`StreamScanner::commit_swap`], restored by a rollback.
    generation: u64,
    /// Pending swap window: present between a committed swap and the end
    /// of its first successfully pushed window.
    rollback: Option<SwapRollback<'e>>,
}

impl BitGen {
    /// Creates a streaming scanner over this engine.
    ///
    /// Succeeds for every compiled pattern set — carry propagation
    /// replaced the old span-bounded tail, so unbounded repetitions no
    /// longer need rejecting.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the signature stable for
    /// callers already using `?`.
    pub fn streamer(&self) -> Result<StreamScanner<'_>, Error> {
        Ok(StreamScanner {
            session: self.session(),
            carries: self.stream_programs.iter().map(CarryState::for_program).collect(),
            metrics: Metrics {
                ctas: vec![ExecMetrics::default(); self.stream_programs.len()],
                ..Metrics::default()
            },
            retry: RetryPolicy::default(),
            poisoned: false,
            fault: None,
            generation: self.generation,
            rollback: None,
        })
    }

    /// Rebuilds a streaming scanner from a [`StreamCheckpoint`], picking
    /// the stream up at the byte boundary where the checkpoint was
    /// taken. The next [`StreamScanner::push`] must feed the bytes that
    /// follow [`StreamCheckpoint::consumed`] in the original stream;
    /// matches then come back bit-identical to an uninterrupted scan.
    ///
    /// The restored scanner starts with the default (fail-fast)
    /// [`RetryPolicy`]; set a different one with
    /// [`StreamScanner::set_retry_policy`].
    ///
    /// # Errors
    ///
    /// [`Error::CheckpointMismatch`] when the checkpoint was taken on an
    /// engine with a different streaming compile (different patterns,
    /// grouping, or lowering), [`Error::GenerationMismatch`] when the
    /// fingerprints agree but the checkpoint sits at a different rule-set
    /// generation (the stream had hot-swapped; rebuild its
    /// [`crate::StagedRules`] lineage and resume on that engine),
    /// [`Error::CheckpointInvalid`] / [`Error::CarryCorrupted`] when its
    /// carry states fail validation against this engine's programs.
    pub fn resume(&self, checkpoint: &StreamCheckpoint) -> Result<StreamScanner<'_>, Error> {
        let expected = self.stream_fingerprint();
        if checkpoint.fingerprint != expected {
            return Err(Error::CheckpointMismatch { expected, found: checkpoint.fingerprint });
        }
        if checkpoint.generation != self.generation {
            return Err(Error::GenerationMismatch {
                expected: self.generation,
                found: checkpoint.generation,
            });
        }
        if checkpoint.carries.len() != self.stream_programs.len() {
            return Err(Error::CheckpointInvalid {
                reason: format!(
                    "checkpoint holds {} carry states, engine has {} groups",
                    checkpoint.carries.len(),
                    self.stream_programs.len()
                ),
            });
        }
        for (group, (carry, prog)) in
            checkpoint.carries.iter().zip(&self.stream_programs).enumerate()
        {
            carry.validate(prog).map_err(|error| Error::CarryCorrupted { group, error })?;
        }
        Ok(StreamScanner {
            session: self.session(),
            carries: checkpoint.carries.clone(),
            // Scalar counters restore exactly; the per-group counter
            // accumulators restart at zero — checkpoints carry the
            // stream's state, not its diagnostic history.
            metrics: Metrics {
                wall_seconds: checkpoint.kernel_seconds + checkpoint.transpose_seconds,
                kernel_seconds: checkpoint.kernel_seconds,
                transpose_seconds: checkpoint.transpose_seconds,
                bytes_scanned: checkpoint.consumed,
                match_count: checkpoint.match_count,
                retries: checkpoint.retries,
                degraded: checkpoint.degraded_chunks,
                swaps: checkpoint.swaps,
                swap_rollbacks: checkpoint.swap_rollbacks,
                ctas: vec![ExecMetrics::default(); self.stream_programs.len()],
                ..Metrics::default()
            },
            retry: RetryPolicy::default(),
            poisoned: false,
            fault: None,
            generation: self.generation,
            rollback: None,
        })
    }

    /// A fingerprint of this engine's streaming compile: the group
    /// count plus every streaming program's full rendering. Two engines
    /// agree exactly when their streaming programs (and hence carry
    /// layouts and match semantics) agree, so a [`StreamCheckpoint`]
    /// restores only onto a compatible compile. Stable across processes.
    pub fn stream_fingerprint(&self) -> u64 {
        let mut h = fnv_bytes(FNV_OFFSET, &CHECKPOINT_VERSION.to_le_bytes());
        h = fnv_bytes(h, &(self.stream_programs.len() as u64).to_le_bytes());
        for prog in &self.stream_programs {
            h = fnv_bytes(h, pretty(prog).as_bytes());
            h = fnv_bytes(h, &u64::from(prog.num_streams()).to_le_bytes());
        }
        h
    }
}

impl<'e> StreamScanner<'e> {
    /// Phase 2 of a live rule-set swap: adopts a [`StagedRules`]
    /// generation at the current chunk boundary. See the
    /// [`crate::swap`] module docs for the full protocol.
    ///
    /// Pre-swap matches, byte offsets, and the accumulated
    /// [`StreamScanner::metrics`] scalars are all preserved; the carry
    /// state is reset to the new programs' layout, so every subsequent
    /// match is bit-identical to a fresh scan under the new rules
    /// starting at [`StreamScanner::consumed`]. The commit arms a swap
    /// window: until the next push commits, an unrecoverable failure
    /// rolls the scanner back to the old generation (counted in
    /// [`bitgen_exec::Metrics::swap_rollbacks`]) instead of poisoning
    /// it.
    ///
    /// The staged generation must outlive the scanner (it is what the
    /// scanner executes after the commit), and one staged generation
    /// can be committed onto any number of scanners serving its parent.
    ///
    /// # Errors
    ///
    /// [`Error::StreamPoisoned`] on a poisoned scanner;
    /// [`Error::SwapMismatch`] when `staged` was prepared from a
    /// different engine or generation than this scanner is serving, or
    /// when a previous swap is still awaiting its first pushed window.
    /// In every error case the scanner is untouched — commit adopts all
    /// of the new generation or none of it.
    pub fn commit_swap(&mut self, staged: &'e StagedRules) -> Result<(), Error> {
        if self.poisoned {
            return Err(Error::StreamPoisoned);
        }
        if self.rollback.is_some() {
            return Err(Error::SwapMismatch {
                reason: "a previous swap is still awaiting its first pushed window".to_string(),
            });
        }
        staged.check_parent(self.session.engine(), self.generation)?;
        let engine = staged.engine();
        // Atomic adopt: stash everything the old generation needs to
        // keep serving (engine, boundary carries, per-group accounting),
        // then repoint the scanner at the new generation wholesale.
        let rollback = SwapRollback {
            engine: self.session.engine_ref(),
            carries: std::mem::replace(
                &mut self.carries,
                engine.stream_programs.iter().map(CarryState::for_program).collect(),
            ),
            ctas: std::mem::replace(
                &mut self.metrics.ctas,
                vec![ExecMetrics::default(); engine.stream_programs.len()],
            ),
            generation: self.generation,
        };
        self.session.set_engine(engine);
        self.generation = staged.generation();
        self.metrics.swaps += 1;
        self.rollback = Some(rollback);
        Ok(())
    }
}

impl StreamScanner<'_> {
    /// Rule-set generation this scanner is serving: `0` until a
    /// [`StreamScanner::commit_swap`], then the committed
    /// [`StagedRules::generation`] — or back to the previous value if
    /// the swap window rolled back.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Undoes a pending swap window: repoints the session at the
    /// previous generation's engine and restores its boundary carries
    /// and per-group accounting. Returns `true` when a window was armed
    /// (the caller surfaces the error *without* poisoning — the old
    /// generation keeps serving as if the swap had never committed).
    fn swap_rollback(&mut self) -> bool {
        match self.rollback.take() {
            Some(rb) => {
                self.session.set_engine(rb.engine);
                self.carries = rb.carries;
                self.metrics.ctas = rb.ctas;
                self.generation = rb.generation;
                self.metrics.swap_rollbacks += 1;
                true
            }
            None => false,
        }
    }

    /// Scans the next chunk, returning the *global* byte positions of
    /// matches that end inside it, ascending. Empty chunks are no-ops.
    ///
    /// The push is a transaction: on any error the carry state and the
    /// whole [`StreamScanner::metrics`] record are exactly as they were
    /// before the call (never double-counted, never half-advanced). See
    /// the [module docs](self) for how the
    /// [`RetryPolicy`] turns detected faults into retries or CPU
    /// degradation instead of failures.
    ///
    /// # Errors
    ///
    /// [`Error::StreamPoisoned`] if an earlier push failed unrecovered;
    /// [`Error::CarryCorrupted`] if the carry state was corrupted between
    /// pushes (checksum/layout validation runs before every window);
    /// otherwise the underlying execution failure after the policy's
    /// attempts are exhausted. Cancellation and deadline errors always
    /// surface (they are rolled back, not retried) and do **not** poison
    /// the scanner.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<u64>, Error> {
        if self.poisoned {
            return Err(Error::StreamPoisoned);
        }
        if chunk.is_empty() {
            return Ok(Vec::new());
        }
        self.session.stream_transpose(chunk);
        let ctl = self.session.stream_ctl();
        // The transaction snapshot: every group's pre-push carry. Any
        // failure restores all of them, so the scanner never advances
        // part-way through a push.
        let snapshot = self.carries.clone();
        let groups = self.carries.len();
        let mut union = BitStream::zeros(chunk.len());
        let mut works = Vec::with_capacity(groups);
        let mut window_metrics: Vec<(usize, ExecMetrics)> = Vec::with_capacity(groups);
        let mut retried = 0u64;
        let mut degraded = false;
        for group in 0..groups {
            if let Err(error) = self.carries[group].validate(&self.session.engine().stream_programs[group])
            {
                // Corruption arrived between pushes; nothing ran on the
                // bad state. Groups earlier in this push already rotated,
                // so put the whole boundary back before bailing — the
                // transaction contract holds even for validation errors.
                // Inside a swap window the previous generation's boundary
                // is still trustworthy, so fall back to it; otherwise
                // nothing trustworthy remains and the scanner poisons
                // rather than execute.
                self.carries = snapshot;
                if self.swap_rollback() {
                    return Err(Error::CarryCorrupted { group, error });
                }
                self.poisoned = true;
                return Err(Error::CarryCorrupted { group, error });
            }
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                let fault = self.take_fault_shot(group);
                match self.session.run_stream_window(group, &ctl, &mut self.carries[group], fault)
                {
                    Ok(outcome) => {
                        for out in &outcome.outputs {
                            union.or_clipped(out);
                        }
                        works.push(outcome.metrics.cta_work());
                        window_metrics.push((group, outcome.metrics));
                        self.carries[group].rotate();
                        break;
                    }
                    Err(e) => {
                        // The failed window may have half-accumulated its
                        // carry; restore this group's snapshot before
                        // deciding what to do next.
                        self.carries[group] = snapshot[group].clone();
                        if is_interrupt(&e) {
                            self.carries = snapshot;
                            return Err(e);
                        }
                        if attempt < self.retry.max_attempts.max(1) {
                            retried += 1;
                            continue;
                        }
                        if self.retry.degrade {
                            match self.session.interpret_stream_window(
                                group,
                                &ctl,
                                &mut self.carries[group],
                            ) {
                                Ok(outputs) => {
                                    for out in &outputs {
                                        union.or_clipped(out);
                                    }
                                    // Degraded windows contribute no device
                                    // work, mirroring degraded batch slots.
                                    works.push(ExecMetrics::default().cta_work());
                                    self.carries[group].rotate();
                                    degraded = true;
                                    break;
                                }
                                Err(ie) => {
                                    self.carries = snapshot;
                                    if !is_interrupt(&ie) && !self.swap_rollback() {
                                        self.poisoned = true;
                                    }
                                    return Err(ie);
                                }
                            }
                        }
                        self.carries = snapshot;
                        if !self.swap_rollback() {
                            self.poisoned = true;
                        }
                        return Err(e);
                    }
                }
            }
        }
        // Commit: the metrics record advances exactly once per
        // successful push. A committed window also closes any pending
        // swap window — the new generation has now served cleanly, so
        // the fallback to the old one is released.
        self.rollback = None;
        let device = &self.session.engine().config().device;
        let cost = device.estimate(&works);
        let transpose = device.transpose_seconds(chunk.len());
        let m = &mut self.metrics;
        m.retries += retried;
        m.degraded += u64::from(degraded);
        m.kernel_seconds += cost.seconds;
        m.transpose_seconds += transpose;
        m.wall_seconds = m.kernel_seconds + m.transpose_seconds;
        // Additive cost components sum across pushes; the utilisation
        // figures describe the most recent push (a per-stream average
        // would need weights the model doesn't produce).
        m.cost.seconds += cost.seconds;
        m.cost.compute_seconds += cost.compute_seconds;
        m.cost.memory_seconds += cost.memory_seconds;
        m.cost.barrier_stall_frac = cost.barrier_stall_frac;
        m.cost.occupancy = cost.occupancy;
        for (group, wm) in window_metrics {
            absorb_window(&mut m.ctas[group], &wm);
        }
        let off = m.bytes_scanned;
        m.bytes_scanned += chunk.len() as u64;
        let ends: Vec<u64> =
            union.positions().into_iter().map(|p| off + p as u64).collect();
        m.match_count += ends.len() as u64;
        Ok(ends)
    }

    /// Captures the stream at the current chunk boundary. Always valid:
    /// failed pushes roll back to the last boundary first, so even a
    /// poisoned scanner checkpoints its last good state (that is the
    /// recovery path — [`BitGen::resume`] the checkpoint and re-push).
    ///
    /// A checkpoint taken inside a pending swap window records the *new*
    /// generation (its fingerprint, generation counter, and fresh
    /// carries): persisting the boundary commits to it, so resuming
    /// treats the swap as done rather than resurrecting the rollback.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        StreamCheckpoint {
            fingerprint: self.session.engine().stream_fingerprint(),
            generation: self.generation,
            consumed: self.metrics.bytes_scanned,
            kernel_seconds: self.metrics.kernel_seconds,
            transpose_seconds: self.metrics.transpose_seconds,
            match_count: self.metrics.match_count,
            retries: self.metrics.retries,
            degraded_chunks: self.metrics.degraded,
            swaps: self.metrics.swaps,
            swap_rollbacks: self.metrics.swap_rollbacks,
            carries: self.carries.clone(),
        }
    }

    /// Sets the fault response policy for subsequent pushes.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active fault response policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Arms a deterministic fault on the next `windows` window
    /// executions of `group` (`u32::MAX` = every one until
    /// [`StreamScanner::clear_fault`]). Retries count: with `windows ==
    /// 1` the first attempt is corrupted and the retry runs clean — the
    /// drill hook the streaming fault-tolerance suite is built on.
    pub fn inject_fault(&mut self, group: usize, plan: FaultPlan, windows: u32) {
        self.fault = Some(StreamFaultArm { group, plan, windows });
    }

    /// Disarms a previously injected fault.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Fault-drill hook: scribbles on one carry slot of `group` between
    /// pushes (via [`CarryState::corrupt_outgoing`]), simulating stray
    /// writes or bitrot at a chunk boundary. The next push's validation
    /// detects it before anything executes. Never call it outside fault
    /// drills.
    pub fn corrupt_carry(&mut self, group: usize, seed: u64) {
        self.carries[group].corrupt_outgoing(seed);
    }

    /// Sets a cancellation token polled cooperatively during pushes; a
    /// cancelled push rolls back and returns
    /// [`bitgen_exec::ExecError::Cancelled`] without poisoning the
    /// scanner.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.session.set_cancel_token(token);
    }

    /// Gives every subsequent push a wall-clock budget; overrunning it
    /// rolls the push back and returns
    /// [`bitgen_exec::ExecError::DeadlineExceeded`] without poisoning
    /// the scanner. `None` removes the budget.
    pub fn set_timeout(&mut self, budget: Option<Duration>) {
        self.session.set_timeout(budget);
    }

    /// Total bytes consumed so far.
    pub fn consumed(&self) -> u64 {
        self.metrics.bytes_scanned
    }

    /// The unified metrics record accumulated over all committed pushes
    /// (failed pushes roll back without touching it). Replaces the old
    /// `seconds()` / `bytes_rescanned()` / `retries()` /
    /// `degraded_chunks()` accessors:
    ///
    /// - `wall_seconds` is the accumulated modelled time, each push
    ///   priced over exactly the bytes it consumed — the carry slots
    ///   replace the old re-scanned tail, so `bytes_rescanned` is
    ///   always `0` (and regression-tested, because the previous
    ///   tail-rescan scanner re-scanned `max_span − 1` bytes per push);
    /// - `retries` counts window replays across committed pushes;
    /// - `degraded` counts pushes in which at least one group's window
    ///   was recovered on the CPU reference interpreter — matches stay
    ///   exact, the counter exists so operators can see the device path
    ///   misbehaving;
    /// - `ctas[group]` accumulates each group's counted hardware events
    ///   (see [`Metrics::counters_total`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// `true` once an unrecovered failure has fenced this scanner off;
    /// see [`Error::StreamPoisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Consumes one armed fault shot for `group`, if any.
    fn take_fault_shot(&mut self, group: usize) -> Option<FaultPlan> {
        let arm = self.fault.as_mut()?;
        if arm.group != group || arm.windows == 0 {
            return None;
        }
        if arm.windows != u32::MAX {
            arm.windows -= 1;
        }
        Some(arm.plan)
    }
}

fn is_interrupt(e: &Error) -> bool {
    matches!(e, Error::Exec(ExecError::Cancelled | ExecError::DeadlineExceeded))
}

/// Folds one committed window's per-CTA record into the per-group
/// streaming accumulator: counted events sum across pushes, static
/// shape fields (threads, shared memory, shift groups) describe the
/// program and are refreshed in place, and peak figures keep their
/// maximum.
fn absorb_window(acc: &mut ExecMetrics, window: &ExecMetrics) {
    let c = &mut acc.counters;
    let w = &window.counters;
    c.alu_ops += w.alu_ops;
    c.smem_stores += w.smem_stores;
    c.smem_loads += w.smem_loads;
    c.barriers += w.barriers;
    c.global_load_words += w.global_load_words;
    c.global_store_words += w.global_store_words;
    c.reductions += w.reductions;
    c.skipped_ops += w.skipped_ops;
    c.window_iterations += w.window_iterations;
    acc.window_iterations += window.window_iterations;
    acc.retries += window.retries;
    acc.fallbacks += window.fallbacks;
    acc.peak_materialized_bytes =
        acc.peak_materialized_bytes.max(window.peak_materialized_bytes);
    acc.dynamic_overlap_max = acc.dynamic_overlap_max.max(window.dynamic_overlap_max);
    acc.segments = window.segments;
    acc.intermediates = window.intermediates;
    acc.static_overlap = window.static_overlap;
    acc.shift_groups = window.shift_groups;
    acc.smem_bytes = window.smem_bytes;
    acc.regs_per_thread = window.regs_per_thread;
    acc.threads = window.threads;
}

/// Version tag written into checkpoint bytes (and folded into
/// [`BitGen::stream_fingerprint`], so a format bump also invalidates
/// fingerprints from older writers). Version 2 split the accumulated
/// seconds into kernel/transpose components and added the match count,
/// so a resumed scanner reports the same [`Metrics`] scalars an
/// uninterrupted one would. Version 3 added the rule-set generation
/// (so [`BitGen::resume`] can fence hot-swapped streams onto the right
/// rule timeline) and the swap/rollback counters.
const CHECKPOINT_VERSION: u32 = 3;

/// Magic prefix of serialized checkpoints: "BitGen Stream Checkpoint".
const CHECKPOINT_MAGIC: [u8; 4] = *b"BGSC";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A suspended stream: everything [`BitGen::resume`] needs to continue
/// scanning from a chunk boundary in another scanner — or another
/// process.
///
/// The serialized form ([`StreamCheckpoint::to_bytes`]) is versioned and
/// self-describing: magic + version header, the engine fingerprint, the
/// counters, each group's carry slots (individually checksummed), and a
/// whole-payload digest. [`StreamCheckpoint::from_bytes`] refuses
/// truncated, tampered, or foreign bytes with a typed error rather than
/// restoring a suspect stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    fingerprint: u64,
    generation: u64,
    consumed: u64,
    kernel_seconds: f64,
    transpose_seconds: f64,
    match_count: u64,
    retries: u64,
    degraded_chunks: u64,
    swaps: u64,
    swap_rollbacks: u64,
    carries: Vec<CarryState>,
}

impl StreamCheckpoint {
    /// Fingerprint of the streaming compile this checkpoint belongs to;
    /// compare with [`BitGen::stream_fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Rule-set generation the suspended stream was serving (`0` if it
    /// never hot-swapped). [`BitGen::resume`] requires the resuming
    /// engine to be at the same generation; after a swap that means
    /// resuming on the [`crate::StagedRules`] engine, not the original.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes the suspended stream had consumed — the offset the next
    /// push must continue from.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Modelled seconds the suspended stream had accumulated
    /// (kernel + transpose components summed).
    pub fn seconds(&self) -> f64 {
        self.kernel_seconds + self.transpose_seconds
    }

    /// Match-end positions the suspended stream had reported.
    pub fn match_count(&self) -> u64 {
        self.match_count
    }

    /// Serializes the checkpoint. The format is stable for a given
    /// `CHECKPOINT_VERSION`; newer readers reject older versions with a
    /// typed error rather than misparsing them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend(CHECKPOINT_MAGIC);
        out.extend(CHECKPOINT_VERSION.to_le_bytes());
        out.extend(self.fingerprint.to_le_bytes());
        out.extend(self.generation.to_le_bytes());
        out.extend(self.consumed.to_le_bytes());
        out.extend(self.kernel_seconds.to_bits().to_le_bytes());
        out.extend(self.transpose_seconds.to_bits().to_le_bytes());
        out.extend(self.match_count.to_le_bytes());
        out.extend(self.retries.to_le_bytes());
        out.extend(self.degraded_chunks.to_le_bytes());
        out.extend(self.swaps.to_le_bytes());
        out.extend(self.swap_rollbacks.to_le_bytes());
        out.extend((self.carries.len() as u32).to_le_bytes());
        for carry in &self.carries {
            carry.write_bytes(&mut out);
        }
        let digest = fnv_bytes(FNV_OFFSET, &out);
        out.extend(digest.to_le_bytes());
        out
    }

    /// Parses bytes produced by [`StreamCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`Error::CheckpointInvalid`] on truncation, bad magic, an
    /// unsupported version, a digest mismatch, or malformed carry bytes.
    /// Compatibility with a *specific engine* is checked later, by
    /// [`BitGen::resume`].
    pub fn from_bytes(bytes: &[u8]) -> Result<StreamCheckpoint, Error> {
        let invalid = |reason: &str| Error::CheckpointInvalid { reason: reason.to_string() };
        if bytes.len() < CHECKPOINT_MAGIC.len() + 12 {
            return Err(invalid("truncated header"));
        }
        let (payload, digest_bytes) = bytes.split_at(bytes.len() - 8);
        let digest = u64::from_le_bytes(digest_bytes.try_into().expect("8-byte split"));
        if fnv_bytes(FNV_OFFSET, payload) != digest {
            return Err(invalid("payload digest mismatch"));
        }
        if payload[..4] != CHECKPOINT_MAGIC {
            return Err(invalid("bad magic"));
        }
        let mut cursor = 4usize;
        let version = read_u32(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        if version != CHECKPOINT_VERSION {
            return Err(invalid("unsupported checkpoint version"));
        }
        let fingerprint = read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let generation = read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let consumed = read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let kernel_seconds =
            f64::from_bits(read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?);
        let transpose_seconds =
            f64::from_bits(read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?);
        let match_count = read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let retries = read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let degraded_chunks =
            read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let swaps = read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let swap_rollbacks =
            read_u64(payload, &mut cursor).ok_or_else(|| invalid("truncated"))?;
        let group_count =
            read_u32(payload, &mut cursor).ok_or_else(|| invalid("truncated"))? as usize;
        // Each carry record is at least a slot count (4 bytes) plus a
        // seal (8 bytes); bounding the group count by the bytes actually
        // remaining keeps a forged header from pre-allocating anything
        // the payload could never back.
        const MIN_CARRY_RECORD_BYTES: usize = 12;
        if group_count > payload.len().saturating_sub(cursor) / MIN_CARRY_RECORD_BYTES {
            return Err(invalid("group count exceeds payload size"));
        }
        let mut carries = Vec::with_capacity(group_count);
        for _ in 0..group_count {
            let carry = CarryState::read_bytes(payload, &mut cursor).map_err(|e| {
                Error::CheckpointInvalid { reason: format!("carry state: {e}") }
            })?;
            carries.push(carry);
        }
        if cursor != payload.len() {
            return Err(invalid("trailing bytes after carry states"));
        }
        Ok(StreamCheckpoint {
            fingerprint,
            generation,
            consumed,
            kernel_seconds,
            transpose_seconds,
            match_count,
            retries,
            degraded_chunks,
            swaps,
            swap_rollbacks,
            carries,
        })
    }
}

fn read_u32(bytes: &[u8], cursor: &mut usize) -> Option<u32> {
    let end = cursor.checked_add(4).filter(|&e| e <= bytes.len())?;
    let v = u32::from_le_bytes(bytes[*cursor..end].try_into().ok()?);
    *cursor = end;
    Some(v)
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Option<u64> {
    let end = cursor.checked_add(8).filter(|&e| e <= bytes.len())?;
    let v = u64::from_le_bytes(bytes[*cursor..end].try_into().ok()?);
    *cursor = end;
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn scan_all(engine: &BitGen, input: &[u8], chunk_sizes: &[usize]) -> Vec<u64> {
        let mut scanner = engine.streamer().unwrap();
        let mut ends = Vec::new();
        let mut pos = 0usize;
        let mut i = 0usize;
        while pos < input.len() {
            let size = chunk_sizes[i % chunk_sizes.len()].max(1).min(input.len() - pos);
            ends.extend(scanner.push(&input[pos..pos + size]).unwrap());
            pos += size;
            i += 1;
        }
        assert_eq!(scanner.consumed(), input.len() as u64);
        ends
    }

    #[test]
    fn chunked_equals_batch() {
        let engine = BitGen::compile(&["abcd", "x[0-9]{2}y", "q"]).unwrap();
        let input = b"abcd x42y qq abcd x99y endabcd";
        let batch: Vec<u64> =
            engine.find(input).unwrap().matches.positions().iter().map(|&p| p as u64).collect();
        for chunks in [&[1usize][..], &[3], &[7, 2], &[100], &[4, 1, 9]] {
            assert_eq!(scan_all(&engine, input, chunks), batch, "chunks {chunks:?}");
        }
    }

    #[test]
    fn unbounded_chunked_equals_batch() {
        let engine = BitGen::compile(&["a+b", "(xy)*z", "c{2,}"]).unwrap();
        let input = b"aab xyxyz ccc ab z aaaab";
        let batch: Vec<u64> =
            engine.find(input).unwrap().matches.positions().iter().map(|&p| p as u64).collect();
        for chunks in [&[1usize][..], &[2], &[5, 1], &[100]] {
            assert_eq!(scan_all(&engine, input, chunks), batch, "chunks {chunks:?}");
        }
    }

    #[test]
    fn match_spanning_many_tiny_chunks() {
        let engine = BitGen::compile(&["abcdefgh"]).unwrap();
        let input = b"..abcdefgh..";
        assert_eq!(scan_all(&engine, input, &[1]), vec![9]);
    }

    #[test]
    fn no_duplicate_reports_at_chunk_boundaries() {
        let engine = BitGen::compile(&["aa"]).unwrap();
        // Overlapping matches across chunk boundaries must appear once.
        let input = b"aaaa";
        let ends = scan_all(&engine, input, &[2]);
        assert_eq!(ends, vec![1, 2, 3]);
    }

    #[test]
    fn unbounded_patterns_stream() {
        // The old scanner rejected these outright (UnboundedPattern).
        let engine = BitGen::compile(&["a+b"]).unwrap();
        let mut scanner = engine.streamer().unwrap();
        // One match, grown across three chunks through the loop carry.
        let mut ends = scanner.push(b"xa").unwrap();
        ends.extend(scanner.push(b"aa").unwrap());
        ends.extend(scanner.push(b"ab").unwrap());
        assert_eq!(ends, vec![5]);
    }

    #[test]
    fn empty_pushes_are_noops() {
        let engine = BitGen::compile(&["ab"]).unwrap();
        let mut scanner = engine.streamer().unwrap();
        assert_eq!(scanner.push(b"").unwrap(), Vec::<u64>::new());
        let mut ends = scanner.push(b"a").unwrap();
        assert_eq!(scanner.push(b"").unwrap(), Vec::<u64>::new());
        ends.extend(scanner.push(b"b").unwrap());
        assert_eq!(ends, vec![1]);
        assert_eq!(scanner.consumed(), 2);
    }

    #[test]
    fn metrics_accumulate_across_pushes() {
        let engine = BitGen::compile_with(&["abc"], EngineConfig::default()).unwrap();
        let mut s = engine.streamer().unwrap();
        s.push(b"abcabc").unwrap();
        let one = s.metrics().wall_seconds;
        assert!(one > 0.0);
        let ops = s.metrics().counters_total().alu_ops;
        assert!(ops > 0);
        s.push(b"abcabc").unwrap();
        let m = s.metrics();
        assert!(m.wall_seconds > one);
        assert!(m.counters_total().alu_ops > ops);
        assert_eq!(m.bytes_scanned, 12);
        assert_eq!(m.match_count, 4);
        assert_eq!(m.wall_seconds.to_bits(), (m.kernel_seconds + m.transpose_seconds).to_bits());
    }

    #[test]
    fn seconds_cover_only_consumed_bytes() {
        // A long-literal pattern gave the old scanner a 7-byte tail to
        // re-scan on every push; the carry scanner prices identical
        // chunks identically, with nothing re-scanned.
        let engine = BitGen::compile(&["abcdefgh"]).unwrap();
        let mut s = engine.streamer().unwrap();
        s.push(&[b'x'; 64]).unwrap();
        let first = s.metrics().wall_seconds;
        s.push(&[b'x'; 64]).unwrap();
        let second = s.metrics().wall_seconds - first;
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!(s.metrics().bytes_rescanned, 0);
    }

    #[test]
    fn zero_attempt_budget_clamps_to_one() {
        let p = RetryPolicy::none().with_attempts(0);
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p, RetryPolicy::none().with_attempts(1));
        // The clamped policy still executes windows normally.
        let engine = BitGen::compile(&["ab"]).unwrap();
        let mut s = engine.streamer().unwrap();
        s.set_retry_policy(p);
        assert_eq!(s.push(b"ab").unwrap(), vec![1]);
        // A raw zero written into the field is clamped by the push loop
        // too (construction sites outside the builder).
        let mut raw = engine.streamer().unwrap();
        raw.set_retry_policy(RetryPolicy { max_attempts: 0, degrade: false });
        assert_eq!(raw.push(b"ab").unwrap(), vec![1]);
    }

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let engine = BitGen::compile(&["a+b", "cat"]).unwrap();
        let mut scanner = engine.streamer().unwrap();
        scanner.push(b"xxaa cat a").unwrap();
        let ckpt = scanner.checkpoint();
        let bytes = ckpt.to_bytes();
        let back = StreamCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.consumed(), 10);
        assert_eq!(back.fingerprint(), engine.stream_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_compiles_and_agrees_with_itself() {
        let a = BitGen::compile(&["a+b", "cat"]).unwrap();
        let a2 = BitGen::compile(&["a+b", "cat"]).unwrap();
        let b = BitGen::compile(&["a+b"]).unwrap();
        assert_eq!(a.stream_fingerprint(), a2.stream_fingerprint());
        assert_ne!(a.stream_fingerprint(), b.stream_fingerprint());
    }
}

//! Streaming scans: feed input in chunks, get globally-positioned matches.
//!
//! The engine's block-wise execution is inherently batch-oriented (the
//! whole stream is transposed up front), but bounded-span pattern sets can
//! be scanned incrementally with a carry-over tail: each chunk is scanned
//! together with the last `max_span − 1` bytes of the previous data, and
//! only matches ending inside the new chunk are reported. Pattern sets
//! containing unbounded repetitions have no span bound and are rejected.

use crate::engine::{BitGen, ScanReport};
use crate::error::Error;
use crate::session::ScanSession;
use std::fmt;

/// Why a streaming scanner could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Some pattern can match arbitrarily long spans (`*`, `+`, `{n,}`),
    /// so no finite carry-over tail is sufficient.
    UnboundedPattern,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnboundedPattern => {
                write!(f, "pattern set contains unbounded repetitions; streaming needs a span bound")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Incremental scanner over a compiled engine.
///
/// Holds a [`ScanSession`] internally, so the per-push transpose and
/// executor buffers are reused across chunks.
///
/// # Examples
///
/// ```
/// use bitgen::BitGen;
///
/// let engine = BitGen::compile(&["abcd"])?;
/// let mut scanner = engine.streamer()?;
/// // The match spans the chunk boundary.
/// let mut ends = scanner.push(b"xxab")?;
/// ends.extend(scanner.push(b"cdyy")?);
/// assert_eq!(ends, vec![5]);
/// # Ok::<(), bitgen::Error>(())
/// ```
#[derive(Debug)]
pub struct StreamScanner<'e> {
    session: ScanSession<'e>,
    /// Bytes of history to prepend: `max_span − 1`.
    overlap: usize,
    /// The retained tail of everything pushed so far.
    tail: Vec<u8>,
    /// Global offset of the first byte of `tail`.
    tail_offset: u64,
    /// Total bytes consumed.
    consumed: u64,
    /// Accumulated modelled seconds across pushes.
    seconds: f64,
    /// Reusable tail + chunk concatenation buffer.
    buffer: Vec<u8>,
}

impl BitGen {
    /// Creates a streaming scanner over this engine.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnboundedPattern`] if any pattern lacks a span
    /// bound.
    pub fn streamer(&self) -> Result<StreamScanner<'_>, Error> {
        match self.max_span() {
            Some(span) => Ok(StreamScanner {
                session: self.session(),
                overlap: span.saturating_sub(1),
                tail: Vec::new(),
                tail_offset: 0,
                consumed: 0,
                seconds: 0.0,
                buffer: Vec::new(),
            }),
            None => Err(StreamError::UnboundedPattern.into()),
        }
    }
}

impl StreamScanner<'_> {
    /// Scans the next chunk, returning the *global* byte positions of
    /// matches that end inside it, ascending.
    ///
    /// # Errors
    ///
    /// Propagates execution failures from the underlying engine.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<u64>, Error> {
        let chunk_start = self.consumed;
        // Scan tail + chunk; matches ending before the chunk were already
        // reported by earlier pushes.
        self.buffer.clear();
        self.buffer.extend_from_slice(&self.tail);
        self.buffer.extend_from_slice(chunk);
        let report: ScanReport = self.session.scan(&self.buffer)?;
        self.seconds += report.seconds;
        let local_chunk_start = (chunk_start - self.tail_offset) as usize;
        let ends = report
            .matches
            .positions()
            .into_iter()
            .filter(|&p| p >= local_chunk_start)
            .map(|p| self.tail_offset + p as u64)
            .collect();
        self.consumed += chunk.len() as u64;
        // Retain the last `overlap` bytes as the next tail.
        let cut = self.buffer.len().saturating_sub(self.overlap);
        self.tail.clear();
        self.tail.extend_from_slice(&self.buffer[cut..]);
        if cut > 0 {
            self.tail_offset = self.consumed - self.tail.len() as u64;
        }
        Ok(ends)
    }

    /// Total bytes consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Accumulated modelled GPU seconds over all pushes (each push is an
    /// independent launch; re-scanning the carried tail is the streaming
    /// overhead).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn scan_all(engine: &BitGen, input: &[u8], chunk_sizes: &[usize]) -> Vec<u64> {
        let mut scanner = engine.streamer().unwrap();
        let mut ends = Vec::new();
        let mut pos = 0usize;
        let mut i = 0usize;
        while pos < input.len() {
            let size = chunk_sizes[i % chunk_sizes.len()].max(1).min(input.len() - pos);
            ends.extend(scanner.push(&input[pos..pos + size]).unwrap());
            pos += size;
            i += 1;
        }
        assert_eq!(scanner.consumed(), input.len() as u64);
        ends
    }

    #[test]
    fn chunked_equals_batch() {
        let engine = BitGen::compile(&["abcd", "x[0-9]{2}y", "q"]).unwrap();
        let input = b"abcd x42y qq abcd x99y endabcd";
        let batch: Vec<u64> =
            engine.find(input).unwrap().matches.positions().iter().map(|&p| p as u64).collect();
        for chunks in [&[1usize][..], &[3], &[7, 2], &[100], &[4, 1, 9]] {
            assert_eq!(scan_all(&engine, input, chunks), batch, "chunks {chunks:?}");
        }
    }

    #[test]
    fn match_spanning_many_tiny_chunks() {
        let engine = BitGen::compile(&["abcdefgh"]).unwrap();
        let input = b"..abcdefgh..";
        assert_eq!(scan_all(&engine, input, &[1]), vec![9]);
    }

    #[test]
    fn no_duplicate_reports_in_overlap() {
        let engine = BitGen::compile(&["aa"]).unwrap();
        // Overlapping matches across chunk boundaries must appear once.
        let input = b"aaaa";
        let ends = scan_all(&engine, input, &[2]);
        assert_eq!(ends, vec![1, 2, 3]);
    }

    #[test]
    fn unbounded_patterns_rejected() {
        let engine = BitGen::compile(&["a+b"]).unwrap();
        assert_eq!(
            engine.streamer().unwrap_err(),
            Error::Stream(StreamError::UnboundedPattern)
        );
        let bounded = BitGen::compile(&["a{1,30}b"]).unwrap();
        assert!(bounded.streamer().is_ok());
    }

    #[test]
    fn seconds_accumulate() {
        let engine = BitGen::compile_with(&["abc"], EngineConfig::default()).unwrap();
        let mut s = engine.streamer().unwrap();
        s.push(b"abcabc").unwrap();
        let one = s.seconds();
        s.push(b"abcabc").unwrap();
        assert!(s.seconds() > one);
    }
}

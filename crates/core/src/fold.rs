//! Case folding: widening every letter class to both cases.

use bitgen_regex::{Ast, ByteSet};

/// Returns a copy of `ast` in which every character class accepts both
/// cases of every ASCII letter it contains — the usual `(?i)` semantics,
/// applied structurally before lowering so every engine (and the
/// character-class circuits) see the widened classes.
///
/// # Examples
///
/// ```
/// use bitgen::{fold_case, parse};
/// use bitgen_regex::match_ends;
///
/// let folded = fold_case(&parse("Get").unwrap());
/// assert_eq!(match_ends(&folded, b"GET get gEt"), vec![2, 6, 10]);
/// ```
pub fn fold_case(ast: &Ast) -> Ast {
    match ast {
        Ast::Empty => Ast::Empty,
        Ast::Class(set) => Ast::Class(fold_set(set)),
        Ast::Concat(parts) => Ast::Concat(parts.iter().map(fold_case).collect()),
        Ast::Alt(parts) => Ast::Alt(parts.iter().map(fold_case).collect()),
        Ast::Star(inner) => Ast::Star(Box::new(fold_case(inner))),
        Ast::Plus(inner) => Ast::Plus(Box::new(fold_case(inner))),
        Ast::Opt(inner) => Ast::Opt(Box::new(fold_case(inner))),
        Ast::Repeat { node, min, max } => {
            Ast::Repeat { node: Box::new(fold_case(node)), min: *min, max: *max }
        }
    }
}

fn fold_set(set: &ByteSet) -> ByteSet {
    let mut out = *set;
    for b in set.iter() {
        if b.is_ascii_lowercase() {
            out.insert(b.to_ascii_uppercase());
        } else if b.is_ascii_uppercase() {
            out.insert(b.to_ascii_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::{match_ends, parse};

    #[test]
    fn folds_literals_and_classes() {
        let folded = fold_case(&parse("[a-c]X9").unwrap());
        for input in [&b"aX9"[..], b"AX9", b"cx9", b"Bx9"] {
            assert_eq!(match_ends(&folded, input), vec![2], "{input:?}");
        }
        assert!(match_ends(&folded, b"dX9").is_empty());
    }

    #[test]
    fn non_letters_unchanged() {
        let folded = fold_case(&parse("[0-9!]").unwrap());
        assert_eq!(folded, parse("[0-9!]").unwrap());
    }

    #[test]
    fn folds_through_structure() {
        let folded = fold_case(&parse("a(b|C)*d{2,3}").unwrap());
        assert_eq!(match_ends(&folded, b"ABcBDD"), vec![5]);
    }

    #[test]
    fn engine_level_case_insensitive() {
        use crate::{BitGen, EngineConfig};
        let engine = BitGen::compile_with(
            &["error"],
            EngineConfig { case_insensitive: true, ..EngineConfig::default() },
        )
        .unwrap();
        let report = engine.find(b"Error ERROR error").unwrap();
        assert_eq!(report.match_count(), 3);
    }
}

//! Live rule-set hot-swap: replace the patterns a running stream
//! matches against, without tearing the stream down.
//!
//! A production matcher (IDS/WAF-style) receives rule updates while
//! streams are live. The protocol here is a two-phase commit:
//!
//! 1. **Prepare** ([`BitGen::prepare_swap`]): compile the new pattern
//!    set — in the background, on any thread — under the serving
//!    engine's existing configuration and [`CompileLimits`] budgets,
//!    into a [`StagedRules`] generation. A parse failure or budget
//!    overrun surfaces here as a typed error and touches nothing: the
//!    live streams never see a half-built engine.
//! 2. **Commit** ([`crate::StreamScanner::commit_swap`]): a scanner
//!    adopts the staged generation at its current chunk boundary. Its
//!    carry state is reset to the new programs' layout, so every
//!    post-swap match is bit-identical to a fresh scan under the new
//!    rules starting at that byte offset; pre-swap matches, byte
//!    offsets, and the accumulated [`Metrics`] scalars are preserved.
//!
//! Commit arms a **swap window**: until the first post-swap push
//! commits, the scanner keeps everything needed to fall back to the old
//! generation. A fault inside that window goes through the scanner's
//! normal [`crate::RetryPolicy`] replay/degrade path *against the new
//! generation*; if the window still fails unrecoverably, the scanner
//! rolls back to the old generation — old programs, old carries, old
//! per-group accounting — instead of poisoning, and keeps serving as if
//! the swap had never been committed. Both outcomes are visible in
//! [`Metrics::swaps`] / [`Metrics::swap_rollbacks`].
//!
//! Generations are fenced end to end: each committed swap bumps the
//! stream's generation counter, checkpoints record it, and
//! [`BitGen::resume`] refuses a checkpoint whose generation differs
//! from the engine's ([`crate::Error::GenerationMismatch`]) even when
//! the fingerprints agree — a stream that swapped is on a different
//! rule timeline than a fresh compile of the same patterns.
//!
//! [`CompileLimits`]: bitgen_ir::CompileLimits
//! [`Metrics`]: bitgen_exec::Metrics
//! [`Metrics::swaps`]: bitgen_exec::Metrics::swaps
//! [`Metrics::swap_rollbacks`]: bitgen_exec::Metrics::swap_rollbacks
//!
//! # Examples
//!
//! ```
//! use bitgen::BitGen;
//!
//! let old = BitGen::compile(&["cat"])?;
//! let mut scanner = old.streamer()?;
//! let mut ends = scanner.push(b"cat dog ")?;
//!
//! // Phase 1: compile the new rules off to the side (may fail; the
//! // stream is untouched either way).
//! let staged = old.prepare_swap(&["dog"])?;
//!
//! // Phase 2: adopt them at the chunk boundary.
//! scanner.commit_swap(&staged)?;
//! ends.extend(scanner.push(b"cat dog ")?);
//!
//! // "cat" matched only before the swap, "dog" only after.
//! assert_eq!(ends, vec![2, 14]);
//! assert_eq!(scanner.generation(), 1);
//! # Ok::<(), bitgen::Error>(())
//! ```

use crate::engine::{BitGen, EngineConfig};
use crate::error::Error;

/// A compiled rule-set generation staged for a hot swap — the output of
/// phase 1 ([`BitGen::prepare_swap`]), the input of phase 2
/// ([`crate::StreamScanner::commit_swap`]).
///
/// Owns a fully compiled engine one generation above its parent, plus
/// the parent's identity so a commit onto the wrong scanner is refused
/// ([`crate::Error::SwapMismatch`]) instead of silently cross-wiring
/// rule timelines. Staging does not disturb the parent or any scanner;
/// dropping an uncommitted `StagedRules` is a no-op abort.
///
/// One staged generation can be committed onto many scanners serving
/// the same parent engine — each commit borrows it, none consume it.
#[derive(Debug)]
pub struct StagedRules {
    engine: BitGen,
    /// Stream fingerprint of the engine this generation was prepared
    /// from; commit verifies the scanner is actually serving it.
    parent_fingerprint: u64,
    /// Generation of the parent engine; the staged engine is one above.
    parent_generation: u64,
}

impl BitGen {
    /// Phase 1 of a live rule-set swap: compiles `patterns` into a
    /// staged generation, under this engine's configuration and
    /// [`CompileLimits`](bitgen_ir::CompileLimits) budgets.
    ///
    /// Safe to run on a background thread while streams keep scanning;
    /// nothing observes the staged engine until a scanner commits it.
    ///
    /// # Errors
    ///
    /// [`Error::Compile`] when a pattern fails to parse,
    /// [`Error::LimitExceeded`] when the set blows a compile budget —
    /// in both cases no staged generation exists and every live stream
    /// is untouched.
    pub fn prepare_swap(&self, patterns: &[&str]) -> Result<StagedRules, Error> {
        let mut engine = BitGen::compile_with(patterns, self.config().clone())?;
        engine.generation = self.generation + 1;
        Ok(StagedRules {
            engine,
            parent_fingerprint: self.stream_fingerprint(),
            parent_generation: self.generation,
        })
    }

    /// Rebuilds the engine for a post-swap checkpoint from its pattern
    /// lineage: `lineage[0]` is the generation-0 rule set, each later
    /// entry the patterns a subsequent hot swap installed. The chain is
    /// replayed — compile generation 0, then [`BitGen::prepare_swap`]
    /// each successor — so the returned engine sits at generation
    /// `lineage.len() - 1` with the exact fingerprint/generation pair a
    /// checkpoint taken after those swaps records.
    ///
    /// This is the adoption path for checkpoints that outlive the
    /// process that made them (drain manifests, disk handoff): a fresh
    /// host has no staged generations to share, but the lineage is
    /// enough to reconstruct one bit-identically.
    ///
    /// # Errors
    ///
    /// [`Error::CheckpointInvalid`] on an empty lineage; otherwise
    /// whatever compiling any generation in the chain returns
    /// ([`Error::Compile`], [`Error::LimitExceeded`]).
    pub fn compile_lineage(
        lineage: &[Vec<String>],
        config: EngineConfig,
    ) -> Result<BitGen, Error> {
        let base = lineage.first().ok_or_else(|| Error::CheckpointInvalid {
            reason: "pattern lineage is empty; nothing to compile".to_string(),
        })?;
        let refs: Vec<&str> = base.iter().map(String::as_str).collect();
        let mut engine = BitGen::compile_with(&refs, config)?;
        for patterns in &lineage[1..] {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            engine = engine.prepare_swap(&refs)?.into_engine();
        }
        Ok(engine)
    }
}

impl StagedRules {
    /// The staged engine: generation parent + 1, compiled and
    /// transform-prepared. Use it directly to batch-scan with the new
    /// rules, or to [`BitGen::resume`] a checkpoint taken after the
    /// swap committed (its generation and fingerprint are the ones such
    /// checkpoints record).
    pub fn engine(&self) -> &BitGen {
        &self.engine
    }

    /// Generation this staged rule set carries (parent + 1).
    pub fn generation(&self) -> u64 {
        self.engine.generation
    }

    /// Consumes the staging wrapper and hands back the compiled engine.
    ///
    /// Serving layers use this after the last scanner has committed the
    /// generation: the engine goes into a shared cache (e.g. behind an
    /// `Arc`) so later resumes of post-swap checkpoints don't recompile.
    /// The parent identity is discarded — the returned engine can no
    /// longer be committed onto anything.
    pub fn into_engine(self) -> BitGen {
        self.engine
    }

    /// Checks that `current` is the engine this generation was prepared
    /// from, at the generation the scanner is serving.
    pub(crate) fn check_parent(
        &self,
        current: &BitGen,
        serving_generation: u64,
    ) -> Result<(), Error> {
        if self.parent_fingerprint != current.stream_fingerprint() {
            return Err(Error::SwapMismatch {
                reason: format!(
                    "staged against engine {:#018x}, scanner is serving {:#018x}",
                    self.parent_fingerprint,
                    current.stream_fingerprint()
                ),
            });
        }
        if self.parent_generation != serving_generation {
            return Err(Error::SwapMismatch {
                reason: format!(
                    "staged from generation {}, scanner is serving generation {}",
                    self.parent_generation, serving_generation
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_ir::CompileLimits;

    #[test]
    fn prepare_increments_generation_and_keeps_config() {
        let base = BitGen::compile_with(
            &["ab"],
            crate::EngineConfig::default().with_cta_threads(32),
        )
        .unwrap();
        assert_eq!(base.generation(), 0);
        let staged = base.prepare_swap(&["cd", "e+f"]).unwrap();
        assert_eq!(staged.generation(), 1);
        assert_eq!(staged.engine().generation(), 1);
        assert_eq!(staged.engine().config().threads, 32);
        // Chained: a second swap stages generation 2 from the first.
        let next = staged.engine().prepare_swap(&["gh"]).unwrap();
        assert_eq!(next.generation(), 2);
    }

    #[test]
    fn prepare_failures_are_typed_and_stage_nothing() {
        let base = BitGen::compile(&["ab"]).unwrap();
        assert!(matches!(base.prepare_swap(&["(oops"]), Err(Error::Compile(_))));

        let tight = BitGen::compile_with(
            &["ab"],
            crate::EngineConfig::default()
                .with_limits(CompileLimits { max_ir_ops: 8, ..CompileLimits::standard() }),
        )
        .unwrap();
        assert!(matches!(
            tight.prepare_swap(&["a[0-9]{3,8}z(qq|rr)+"]),
            Err(Error::LimitExceeded(_))
        ));
    }

    #[test]
    fn lineage_replay_resumes_post_swap_checkpoints_bit_identically() {
        // Live timeline: gen 0 scans, swaps to gen 1, scans, checkpoints.
        let base = BitGen::compile(&["cat"]).unwrap();
        let staged = base.prepare_swap(&["dog", "a+b"]).unwrap();
        let mut scanner = base.streamer().unwrap();
        let mut ends = scanner.push(b"cat dog ").unwrap();
        scanner.commit_swap(&staged).unwrap();
        ends.extend(scanner.push(b"cat dog aab ").unwrap());
        let checkpoint = scanner.checkpoint();

        // A fresh host rebuilds the generation-1 engine from the lineage
        // alone and continues the stream bit-identically.
        let lineage = vec![vec!["cat".to_string()], vec!["dog".to_string(), "a+b".to_string()]];
        let rebuilt =
            BitGen::compile_lineage(&lineage, crate::EngineConfig::default()).unwrap();
        assert_eq!(rebuilt.generation(), 1);
        assert_eq!(rebuilt.stream_fingerprint(), staged.engine().stream_fingerprint());
        let mut resumed = rebuilt.resume(&checkpoint).unwrap();
        ends.extend(resumed.push(b"dog aab cat ").unwrap());

        // Ground truth: one uninterrupted scan with the same swap point.
        let truth_engine = BitGen::compile(&["cat"]).unwrap();
        let truth_staged = truth_engine.prepare_swap(&["dog", "a+b"]).unwrap();
        let mut truth = truth_engine.streamer().unwrap();
        let mut want = truth.push(b"cat dog ").unwrap();
        truth.commit_swap(&truth_staged).unwrap();
        want.extend(truth.push(b"cat dog aab ").unwrap());
        want.extend(truth.push(b"dog aab cat ").unwrap());
        assert_eq!(ends, want);

        // An empty lineage is a typed refusal, not a panic.
        assert!(matches!(
            BitGen::compile_lineage(&[], crate::EngineConfig::default()),
            Err(Error::CheckpointInvalid { .. })
        ));
    }

    #[test]
    fn check_parent_rejects_foreign_engines_and_generations() {
        let a = BitGen::compile(&["ab"]).unwrap();
        let b = BitGen::compile(&["xy"]).unwrap();
        let staged = a.prepare_swap(&["cd"]).unwrap();
        assert!(staged.check_parent(&a, 0).is_ok());
        assert!(matches!(
            staged.check_parent(&b, 0),
            Err(Error::SwapMismatch { .. })
        ));
        assert!(matches!(
            staged.check_parent(&a, 1),
            Err(Error::SwapMismatch { .. })
        ));
    }
}

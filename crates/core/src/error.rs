//! The crate-wide error type: one enum over every failure an entry
//! point can produce, so callers hold a single `Result` shape across
//! compilation, scanning, and streaming.

use crate::engine::CompileError;
use bitgen_exec::ExecError;
use bitgen_ir::{CarryError, LimitError};
use std::fmt;

/// Any failure a `bitgen` entry point can return.
///
/// Wraps the stage-specific errors ([`CompileError`], [`ExecError`])
/// so pipelines mixing compilation, scanning, and streaming can use
/// `?` throughout:
///
/// ```
/// use bitgen::BitGen;
///
/// fn count(patterns: &[&str], input: &[u8]) -> Result<usize, bitgen::Error> {
///     let engine = BitGen::compile(patterns)?;
///     let report = engine.find(input)?;
///     Ok(report.match_count())
/// }
///
/// assert_eq!(count(&["ab"], b"abab")?, 2);
/// assert!(count(&["(oops"], b"").is_err());
/// # Ok::<(), bitgen::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A pattern failed to compile.
    Compile(CompileError),
    /// The pattern set blew through a compile budget
    /// ([`crate::EngineConfig::with_limits`]) — too many AST nodes,
    /// distinct byte classes, or IR instructions for one group.
    LimitExceeded(LimitError),
    /// Execution failed on the simulated device.
    Exec(ExecError),
    /// A worker thread panicked while running one (group × stream) CTA.
    /// The scan aborted, but other workers' slots were unaffected;
    /// compile with [`crate::RecoveryPolicy::Degrade`] to recover the
    /// affected streams on the CPU baseline instead.
    WorkerPanicked {
        /// Index of the regex group whose CTA panicked.
        group: usize,
        /// Index of the input stream whose CTA panicked.
        stream: usize,
    },
    /// A [`crate::StreamScanner`] was used again after an unrecovered
    /// push failure. The failed push rolled the carry state back to the
    /// last good boundary, so [`crate::StreamScanner::checkpoint`] is
    /// still valid — restore it with [`crate::BitGen::resume`] and
    /// re-push the failed chunk — but `push` itself stays fenced off so
    /// accidental reuse can never execute from a suspect state.
    StreamPoisoned,
    /// A stream's carry state failed its integrity check (checksum,
    /// layout, or boundary invariant) before a window executed. The
    /// corruption happened *between* pushes; nothing was executed on the
    /// bad state.
    CarryCorrupted {
        /// Index of the regex group whose carry failed validation.
        group: usize,
        /// What the integrity check tripped over.
        error: CarryError,
    },
    /// Serialized checkpoint bytes could not be parsed (bad magic,
    /// unsupported version, truncation, or payload digest mismatch).
    CheckpointInvalid {
        /// What the parser tripped over.
        reason: String,
    },
    /// A checkpoint's engine fingerprint does not match the engine asked
    /// to resume it — the pattern set or streaming compile differs, so
    /// the carry layout cannot be trusted to line up.
    CheckpointMismatch {
        /// Fingerprint of the engine asked to resume.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// A checkpoint's rule-set generation does not match the engine asked
    /// to resume it: the stream had hot-swapped a different number of
    /// times than the engine's lineage records, so its byte counters and
    /// match history belong to a different rule timeline. Rebuild the
    /// engine for the checkpoint's generation (compile the original
    /// rules, then replay the [`crate::BitGen::prepare_swap`] chain) and
    /// resume on that.
    GenerationMismatch {
        /// Generation of the engine asked to resume.
        expected: u64,
        /// Generation recorded in the checkpoint.
        found: u64,
    },
    /// A staged rule-set swap ([`crate::StagedRules`]) was committed onto
    /// a scanner it was not prepared for — wrong parent engine, wrong
    /// generation, or a previous swap still awaiting its first window.
    /// The scanner is untouched: commit is atomic and rejects before
    /// adopting anything.
    SwapMismatch {
        /// Why the commit was refused.
        reason: String,
    },
    /// A serving layer refused to take on more work: an admission,
    /// stream, or queued request would have exceeded a configured bound
    /// (worker-pool queue depth, per-tenant stream or queue budget).
    /// Nothing was buffered and no stream state changed — retry later,
    /// shed load, or raise the budget. This is backpressure, not a
    /// failure of any scan.
    Overloaded {
        /// Which bound the request hit.
        reason: String,
    },
    /// A serving layer is draining: it has stopped admitting new streams
    /// and new pushes while it finishes in-flight work and checkpoints
    /// every open stream for adoption elsewhere. No stream state changed
    /// — retry against the successor instance (or the same one after it
    /// restarts and adopts the drain manifest).
    Draining,
    /// A wire frame exceeded the transport's configured bound. The peer
    /// sent more bytes in one frame than the daemon is willing to
    /// buffer; the frame was discarded unread (bounded memory, never
    /// unbounded buffering) and the connection is no longer in sync.
    FrameTooLarge {
        /// The configured maximum frame length in bytes.
        limit: usize,
        /// How many bytes had arrived when the bound tripped (the frame
        /// was still unterminated, so the true length is at least this).
        length: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::LimitExceeded(e) => write!(f, "compile budget exceeded: {e}"),
            Error::Exec(e) => write!(f, "execution error: {e}"),
            Error::WorkerPanicked { group, stream } => {
                write!(f, "scan worker panicked on group {group}, stream {stream}")
            }
            Error::StreamPoisoned => write!(
                f,
                "stream scanner poisoned by an earlier unrecovered failure; \
                 resume from its checkpoint to continue"
            ),
            Error::CarryCorrupted { group, error } => {
                write!(f, "stream carry state corrupted on group {group}: {error}")
            }
            Error::CheckpointInvalid { reason } => {
                write!(f, "invalid stream checkpoint: {reason}")
            }
            Error::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match engine {expected:#018x}"
            ),
            Error::GenerationMismatch { expected, found } => write!(
                f,
                "checkpoint is at rule-set generation {found}, engine is at {expected}; \
                 resume onto the engine for that generation"
            ),
            Error::SwapMismatch { reason } => {
                write!(f, "staged rule-set swap refused: {reason}")
            }
            Error::Overloaded { reason } => {
                write!(f, "service overloaded, request rejected: {reason}")
            }
            Error::Draining => write!(
                f,
                "service is draining: in-flight streams are being checkpointed \
                 for adoption; retry against the successor instance"
            ),
            Error::FrameTooLarge { limit, length } => write!(
                f,
                "wire frame too large: {length} bytes exceed the {limit}-byte bound"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::LimitExceeded(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::CarryCorrupted { error, .. } => Some(error),
            Error::WorkerPanicked { .. }
            | Error::StreamPoisoned
            | Error::CheckpointInvalid { .. }
            | Error::CheckpointMismatch { .. }
            | Error::GenerationMismatch { .. }
            | Error::SwapMismatch { .. }
            | Error::Overloaded { .. }
            | Error::Draining
            | Error::FrameTooLarge { .. } => None,
        }
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Error {
        Error::Compile(e)
    }
}

impl From<LimitError> for Error {
    fn from(e: LimitError) -> Error {
        Error::LimitExceeded(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Error {
        Error::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_and_displays_each_stage() {
        let e = crate::BitGen::compile(&["(bad"]).unwrap_err();
        assert!(matches!(e, Error::Compile(_)));
        assert!(e.to_string().contains("compile error"));
        assert!(e.source().is_some());

        let exec = Error::from(bitgen_exec::ExecError::Cancelled);
        assert!(exec.to_string().contains("execution error"));
        assert!(exec.source().is_some());
    }

    #[test]
    fn serving_lifecycle_errors_display_their_shape() {
        let draining = Error::Draining;
        assert!(draining.to_string().contains("draining"));
        assert!(draining.source().is_none());

        let frame = Error::FrameTooLarge { limit: 1024, length: 1025 };
        let text = frame.to_string();
        assert!(text.contains("1024") && text.contains("1025"), "{text}");
        assert!(frame.source().is_none());
    }
}

//! Def/use analysis helpers shared by the transformation passes.

use crate::program::{Op, Program, Stmt, StreamId};

/// Per-variable definition and use counts for a program.
///
/// Variables written exactly once and read exactly once are the safe
/// targets for pattern rewrites (shift rebalancing); loop-carried
/// accumulators show up with multiple definitions and are left alone.
#[derive(Debug, Clone)]
pub struct DefUse {
    defs: Vec<usize>,
    uses: Vec<usize>,
}

impl DefUse {
    /// Computes def/use counts. Control-flow conditions and program outputs
    /// count as uses; executing a loop body repeatedly does not multiply
    /// counts (these are static, per-occurrence counts).
    pub fn of(program: &Program) -> DefUse {
        let n = program.num_streams() as usize;
        let mut du = DefUse { defs: vec![0; n], uses: vec![0; n] };
        du.walk(program.stmts());
        for &out in program.outputs() {
            du.uses[out.index()] += 1;
        }
        du
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Op(op) => {
                    self.defs[op.dst().index()] += 1;
                    for s in op.sources() {
                        self.uses[s.index()] += 1;
                    }
                }
                Stmt::If { cond, body } | Stmt::While { cond, body } => {
                    self.uses[cond.index()] += 1;
                    self.walk(body);
                }
            }
        }
    }

    /// Number of static definitions of `id`.
    ///
    /// Ids allocated after the analysis ran report zero, which makes every
    /// consumer treat them conservatively.
    pub fn def_count(&self, id: StreamId) -> usize {
        self.defs.get(id.index()).copied().unwrap_or(0)
    }

    /// Number of static uses of `id` (zero for ids newer than the
    /// analysis).
    pub fn use_count(&self, id: StreamId) -> usize {
        self.uses.get(id.index()).copied().unwrap_or(0)
    }

    /// `true` when `id` is written once and read once: safe to rewrite the
    /// producing instruction into its consumer.
    pub fn is_linear_temp(&self, id: StreamId) -> bool {
        self.def_count(id) == 1 && self.use_count(id) == 1
    }

    /// Grows the tables to cover stream ids below `n` (new ids start at
    /// zero counts). Passes that allocate fresh streams call this before
    /// recording ops that mention them.
    pub fn ensure_streams(&mut self, n: u32) {
        let n = n as usize;
        if self.defs.len() < n {
            self.defs.resize(n, 0);
            self.uses.resize(n, 0);
        }
    }

    /// Records an instruction added to the analysed program, keeping the
    /// counts exact without a recompute. Tables grow as needed.
    pub fn note_op_added(&mut self, op: &Op) {
        self.ensure_streams(op.dst().0 + 1);
        self.defs[op.dst().index()] += 1;
        for s in op.sources() {
            self.ensure_streams(s.0 + 1);
            self.uses[s.index()] += 1;
        }
    }

    /// Records an instruction removed from the analysed program.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the op was never counted: that means
    /// the cache no longer describes the program.
    pub fn note_op_removed(&mut self, op: &Op) {
        let d = op.dst().index();
        debug_assert!(self.defs.get(d).is_some_and(|&c| c > 0), "removing an uncounted def");
        self.defs[d] -= 1;
        for s in op.sources() {
            let s = s.index();
            debug_assert!(self.uses.get(s).is_some_and(|&c| c > 0), "removing an uncounted use");
            self.uses[s] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn counts_straight_line() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        let y = b.advance(x, 1);
        let z = b.and(x, y);
        b.mark_output(z);
        let prog = b.finish();
        let du = DefUse::of(&prog);
        assert_eq!(du.def_count(x), 1);
        assert_eq!(du.use_count(x), 2);
        assert!(du.is_linear_temp(y));
        assert_eq!(du.use_count(z), 1, "output counts as a use");
        assert!(!du.is_linear_temp(x));
    }

    #[test]
    fn incremental_updates_match_recompute() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        let y = b.advance(x, 1);
        let z = b.and(x, y);
        b.mark_output(z);
        let prog = b.finish();
        let mut du = DefUse::of(&prog);
        // Simulate a rewrite: drop `y = x >> 1`, add `t = x << 1` on a
        // fresh id, and check against ground truth built the same way.
        let t = StreamId(prog.num_streams());
        du.note_op_removed(&Op::Advance { dst: y, src: x, amount: 1 });
        du.note_op_added(&Op::Retreat { dst: t, src: x, amount: 1 });
        assert_eq!(du.def_count(y), 0);
        assert_eq!(du.use_count(x), 2, "one use moved from the advance to the retreat");
        assert_eq!(du.def_count(t), 1);
        assert!(du.use_count(t) == 0 && du.def_count(z) == 1);
    }

    #[test]
    fn ensure_streams_grows_tables() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        b.mark_output(x);
        let mut du = DefUse::of(&b.finish());
        let far = StreamId(100);
        assert_eq!(du.def_count(far), 0);
        du.note_op_added(&Op::Zero { dst: far });
        assert_eq!(du.def_count(far), 1);
        du.ensure_streams(50); // never shrinks
        assert_eq!(du.def_count(far), 1);
    }

    #[test]
    fn loop_carried_vars_are_not_linear() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        let acc = b.assign_new(x);
        b.while_loop(acc, |b| {
            let t = b.advance(acc, 1);
            b.assign_to(acc, t);
        });
        b.mark_output(acc);
        let prog = b.finish();
        let du = DefUse::of(&prog);
        assert_eq!(du.def_count(acc), 2);
        assert!(!du.is_linear_temp(acc));
        // The condition use is counted.
        assert!(du.use_count(acc) >= 2);
    }
}

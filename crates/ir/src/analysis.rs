//! Def/use analysis helpers shared by the transformation passes.

use crate::program::{Program, Stmt, StreamId};

/// Per-variable definition and use counts for a program.
///
/// Variables written exactly once and read exactly once are the safe
/// targets for pattern rewrites (shift rebalancing); loop-carried
/// accumulators show up with multiple definitions and are left alone.
#[derive(Debug, Clone)]
pub struct DefUse {
    defs: Vec<usize>,
    uses: Vec<usize>,
}

impl DefUse {
    /// Computes def/use counts. Control-flow conditions and program outputs
    /// count as uses; executing a loop body repeatedly does not multiply
    /// counts (these are static, per-occurrence counts).
    pub fn of(program: &Program) -> DefUse {
        let n = program.num_streams() as usize;
        let mut du = DefUse { defs: vec![0; n], uses: vec![0; n] };
        du.walk(program.stmts());
        for &out in program.outputs() {
            du.uses[out.index()] += 1;
        }
        du
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Op(op) => {
                    self.defs[op.dst().index()] += 1;
                    for s in op.sources() {
                        self.uses[s.index()] += 1;
                    }
                }
                Stmt::If { cond, body } | Stmt::While { cond, body } => {
                    self.uses[cond.index()] += 1;
                    self.walk(body);
                }
            }
        }
    }

    /// Number of static definitions of `id`.
    ///
    /// Ids allocated after the analysis ran report zero, which makes every
    /// consumer treat them conservatively.
    pub fn def_count(&self, id: StreamId) -> usize {
        self.defs.get(id.index()).copied().unwrap_or(0)
    }

    /// Number of static uses of `id` (zero for ids newer than the
    /// analysis).
    pub fn use_count(&self, id: StreamId) -> usize {
        self.uses.get(id.index()).copied().unwrap_or(0)
    }

    /// `true` when `id` is written once and read once: safe to rewrite the
    /// producing instruction into its consumer.
    pub fn is_linear_temp(&self, id: StreamId) -> bool {
        self.def_count(id) == 1 && self.use_count(id) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn counts_straight_line() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        let y = b.advance(x, 1);
        let z = b.and(x, y);
        b.mark_output(z);
        let prog = b.finish();
        let du = DefUse::of(&prog);
        assert_eq!(du.def_count(x), 1);
        assert_eq!(du.use_count(x), 2);
        assert!(du.is_linear_temp(y));
        assert_eq!(du.use_count(z), 1, "output counts as a use");
        assert!(!du.is_linear_temp(x));
    }

    #[test]
    fn loop_carried_vars_are_not_linear() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        let acc = b.assign_new(x);
        b.while_loop(acc, |b| {
            let t = b.advance(acc, 1);
            b.assign_to(acc, t);
        });
        b.mark_output(acc);
        let prog = b.finish();
        let du = DefUse::of(&prog);
        assert_eq!(du.def_count(acc), 2);
        assert!(!du.is_linear_temp(acc));
        // The condition use is counted.
        assert!(du.use_count(acc) >= 2);
    }
}

//! Static instruction statistics for bitstream programs.
//!
//! Produces the per-application instruction breakdown the paper reports in
//! Table 1: counts of `and`, `or`, `not`, `shift`, and `while`. Character
//! class matches are expanded into their basis-bit circuits when counting,
//! matching the paper's convention (its counts come from the full programs
//! icgrep emits, where class computation is ordinary bitwise code).

use crate::program::{Op, Program, Stmt};
use bitgen_bitstream::compile_class;
use std::fmt;
use std::ops::Add;

/// Instruction counts of a bitstream program (the Table 1 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Bitwise AND instructions (including those inside class circuits).
    pub and: usize,
    /// Bitwise OR instructions (including those inside class circuits).
    pub or: usize,
    /// Bitwise NOT instructions (including those inside class circuits).
    pub not: usize,
    /// Shift instructions (advance + retreat).
    pub shift: usize,
    /// `while` statements.
    pub r#while: usize,
    /// `if` statements (zero after lowering; inserted by ZBS).
    pub r#if: usize,
    /// Copies and constant loads (not reported in Table 1 but useful).
    pub other: usize,
}

impl ProgramStats {
    /// Gathers the statistics of `program`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitgen_regex::parse;
    /// use bitgen_ir::{lower, ProgramStats};
    ///
    /// let prog = lower(&parse("a(bc)*d").unwrap());
    /// let stats = ProgramStats::of(&prog);
    /// assert_eq!(stats.r#while, 1);
    /// assert!(stats.shift >= 3);
    /// ```
    pub fn of(program: &Program) -> ProgramStats {
        let mut s = ProgramStats::default();
        count_stmts(program.stmts(), &mut s);
        s
    }

    /// Total instruction count (excluding control-flow headers).
    pub fn total_ops(&self) -> usize {
        self.and + self.or + self.not + self.shift + self.other
    }
}

fn count_stmts(stmts: &[Stmt], s: &mut ProgramStats) {
    for stmt in stmts {
        match stmt {
            Stmt::Op(op) => count_op(op, s),
            Stmt::If { body, .. } => {
                s.r#if += 1;
                count_stmts(body, s);
            }
            Stmt::While { body, .. } => {
                s.r#while += 1;
                count_stmts(body, s);
            }
        }
    }
}

fn count_op(op: &Op, s: &mut ProgramStats) {
    match op {
        Op::MatchCc { class, .. } => {
            let (a, o, n) = compile_class(class).gate_breakdown();
            s.and += a;
            s.or += o;
            s.not += n;
        }
        Op::And { .. } => s.and += 1,
        Op::Or { .. } => s.or += 1,
        Op::Xor { .. } | Op::Add { .. } => s.other += 1,
        Op::Not { .. } => s.not += 1,
        Op::Advance { .. } | Op::Retreat { .. } => s.shift += 1,
        Op::Assign { .. } | Op::Zero { .. } | Op::Ones { .. } => s.other += 1,
    }
}

impl Add for ProgramStats {
    type Output = ProgramStats;

    fn add(self, rhs: ProgramStats) -> ProgramStats {
        ProgramStats {
            and: self.and + rhs.and,
            or: self.or + rhs.or,
            not: self.not + rhs.not,
            shift: self.shift + rhs.shift,
            r#while: self.r#while + rhs.r#while,
            r#if: self.r#if + rhs.r#if,
            other: self.other + rhs.other,
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "and={} or={} not={} shift={} while={}",
            self.and, self.or, self.not, self.shift, self.r#while
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use bitgen_regex::parse;

    #[test]
    fn literal_counts() {
        let stats = ProgramStats::of(&lower(&parse("ab").unwrap()));
        // Two concat steps: 2 program ANDs + circuit gates; 2 advances +
        // 1 retreat for ends.
        assert_eq!(stats.shift, 3);
        assert!(stats.and >= 2);
        assert_eq!(stats.r#while, 0);
        assert_eq!(stats.r#if, 0);
    }

    #[test]
    fn star_adds_while() {
        let stats = ProgramStats::of(&lower(&parse("a(bc)*d").unwrap()));
        assert_eq!(stats.r#while, 1);
        assert!(stats.not >= 1, "fixpoint loop negates the accumulator");
    }

    #[test]
    fn class_circuits_are_counted() {
        let plain = ProgramStats::of(&lower(&parse("a").unwrap()));
        let range = ProgramStats::of(&lower(&parse("[a-z0-9_]").unwrap()));
        assert!(
            range.total_ops() != plain.total_ops(),
            "different circuits must differ in op counts"
        );
        assert!(plain.and >= 7, "single byte needs a 7-AND circuit");
    }

    #[test]
    fn stats_add() {
        let a = ProgramStats { and: 1, or: 2, not: 3, shift: 4, r#while: 5, r#if: 0, other: 6 };
        let b = a;
        let c = a + b;
        assert_eq!(c.and, 2);
        assert_eq!(c.r#while, 10);
        assert_eq!(c.total_ops(), 2 * a.total_ops());
    }

    #[test]
    fn display_mentions_all_columns() {
        let s = ProgramStats::of(&lower(&parse("a+b").unwrap())).to_string();
        for col in ["and=", "or=", "not=", "shift=", "while="] {
            assert!(s.contains(col), "missing {col} in {s}");
        }
    }
}

//! Whole-stream reference interpreter for bitstream programs.
//!
//! Executes a [`Program`] one instruction at a time over full-length
//! [`BitStream`]s — the semantics every GPU execution scheme must agree
//! with. Also records the loop trip counts used to validate the dynamic
//! overlap analysis.

use crate::carry::{carry_slot_count, CarryState};
use crate::control::{Interrupt, RunControl};
use crate::program::{Op, Program, Stmt, StreamId};
use bitgen_bitstream::{compile_class, Basis, BitStream, CcExpr};
use std::fmt;

/// Result of interpreting a program.
#[derive(Debug, Clone)]
pub struct InterpResult {
    /// One match-end stream per program output (per regex in the group).
    pub outputs: Vec<BitStream>,
    /// Total `while` trips executed, summed over all loops.
    pub loop_trips: usize,
    /// Total instructions executed (loop bodies counted per trip).
    pub ops_executed: usize,
}

impl InterpResult {
    /// The union of all output streams: positions where *any* regex of the
    /// group matches.
    pub fn union(&self) -> BitStream {
        let len = self.outputs.first().map_or(0, BitStream::len);
        let mut acc = BitStream::zeros(len);
        for s in &self.outputs {
            acc.or_assign(s);
        }
        acc
    }

    /// Match-end byte positions of output `i`, ascending.
    pub fn match_ends(&self, i: usize) -> Vec<usize> {
        self.outputs[i].positions()
    }
}

/// Interprets `program` over the transposed `input`.
///
/// All streams have length `input.len() + 1` (see
/// [`Program::stream_len`]); the returned match-end streams only ever set
/// bits below `input.len()`.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::{lower, interpret};
/// use bitgen_bitstream::Basis;
///
/// let prog = lower(&parse("a(bc)*d").unwrap());
/// let basis = Basis::transpose(b"xabcbcd");
/// let result = interpret(&prog, &basis);
/// assert_eq!(result.match_ends(0), vec![6]);
/// ```
pub fn interpret(program: &Program, basis: &Basis) -> InterpResult {
    match try_interpret(program, basis, &RunControl::unlimited()) {
        Ok(r) => r,
        Err(InterpError::UnwrittenStream { id }) => panic!("read of unwritten stream {id}"),
        Err(InterpError::FixpointDiverged) => panic!("while loop exceeded its fixpoint bound"),
        // Unreachable: an unlimited RunControl never interrupts.
        Err(e) => panic!("uncontrolled interpretation stopped: {e}"),
    }
}

/// Why [`try_interpret`] stopped without a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// The run's [`CancelToken`](crate::CancelToken) was triggered.
    Cancelled,
    /// The run's deadline passed.
    DeadlineExceeded,
    /// The program read a stream before writing it — a malformed program
    /// that [`verify`](crate::verify) would reject.
    UnwrittenStream {
        /// The stream that was read while undefined.
        id: StreamId,
    },
    /// A `while` loop ran past the fixpoint bound (`stream_len + 2`
    /// trips) — only possible for a miscompiled or corrupted program.
    FixpointDiverged,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Cancelled => write!(f, "interpretation cancelled"),
            InterpError::DeadlineExceeded => write!(f, "interpretation deadline exceeded"),
            InterpError::UnwrittenStream { id } => write!(f, "read of unwritten stream {id}"),
            InterpError::FixpointDiverged => {
                write!(f, "while loop exceeded its fixpoint bound")
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl From<Interrupt> for InterpError {
    fn from(i: Interrupt) -> InterpError {
        match i {
            Interrupt::Cancelled => InterpError::Cancelled,
            Interrupt::DeadlineExceeded => InterpError::DeadlineExceeded,
        }
    }
}

/// [`interpret`] with typed errors and cooperative interruption.
///
/// `ctl` is polled once per executed statement — each statement processes
/// a whole stream, so the poll is amortised over kilobytes of work while
/// cancellation still lands promptly.
pub fn try_interpret(
    program: &Program,
    basis: &Basis,
    ctl: &RunControl,
) -> Result<InterpResult, InterpError> {
    run_env(program, basis, ctl, None)
}

/// Interprets one streaming window of `program` with cross-chunk carries.
///
/// `basis` is the transposition of a single chunk; all streams span
/// `chunk.len() + 1` positions, the last being a provisional *peek*
/// position whose class bits are unknown (zero). Shift and add carries
/// are read from and accumulated into `carry`
/// (see [`CarryState::for_program`]); the caller must
/// [`rotate`](CarryState::rotate) the state between consecutive windows.
///
/// Only output bits below `chunk.len()` are final for this window — the
/// peek position is recomputed as position 0 of the next window, and the
/// final window's peek coincides with the batch sentinel, so streaming a
/// whole input chunk by chunk reproduces batch interpretation bit for bit
/// with no flush step. While-loops run to a *local* fixpoint per window;
/// bodies whose condition is locally empty still execute once when a
/// carry slot inside them is pending.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::{lower, try_interpret_chunk, CarryState, RunControl};
/// use bitgen_bitstream::Basis;
///
/// let prog = lower(&parse("a+b").unwrap()); // unbounded: fine to stream
/// let mut carry = CarryState::for_program(&prog);
/// let mut ends = Vec::new();
/// let mut off = 0;
/// for chunk in [&b"xa"[..], b"aa", b"b."] {
///     let r = try_interpret_chunk(&prog, &Basis::transpose(chunk),
///                                 &RunControl::unlimited(), &mut carry)?;
///     ends.extend(r.union().positions().into_iter()
///         .filter(|&p| p < chunk.len()).map(|p| off + p));
///     carry.rotate();
///     off += chunk.len();
/// }
/// assert_eq!(ends, vec![4]); // the `b` of "xaaab."
/// # Ok::<(), bitgen_ir::InterpError>(())
/// ```
pub fn try_interpret_chunk(
    program: &Program,
    basis: &Basis,
    ctl: &RunControl,
    carry: &mut CarryState,
) -> Result<InterpResult, InterpError> {
    run_env(program, basis, ctl, Some(CarryRun { state: carry, next: 0 }))
}

fn run_env(
    program: &Program,
    basis: &Basis,
    ctl: &RunControl,
    carry: Option<CarryRun<'_>>,
) -> Result<InterpResult, InterpError> {
    let len = Program::stream_len(basis.len());
    let mut env = Env {
        vars: vec![None; program.num_streams() as usize],
        cc: vec![None; program.num_streams() as usize],
        basis,
        len,
        loop_trips: 0,
        ops_executed: 0,
        carry,
    };
    env.run(program.stmts(), ctl)?;
    let mut outputs = Vec::with_capacity(program.outputs().len());
    for &id in program.outputs() {
        outputs.push(env.get(id)?.clone());
    }
    Ok(InterpResult { outputs, loop_trips: env.loop_trips, ops_executed: env.ops_executed })
}

struct CarryRun<'a> {
    state: &'a mut CarryState,
    next: usize,
}

impl CarryRun<'_> {
    fn take_slot(&mut self) -> usize {
        let s = self.next;
        self.next += 1;
        s
    }
}

struct Env<'a> {
    vars: Vec<Option<BitStream>>,
    /// Per-destination compiled class circuits, keyed by the address of
    /// the `MatchCc` op's class (stable for the duration of the run):
    /// loop trips re-execute the same op many times, so the circuit is
    /// compiled once and revalidated by key on each hit.
    cc: Vec<Option<(usize, CcExpr)>>,
    basis: &'a Basis,
    len: usize,
    loop_trips: usize,
    ops_executed: usize,
    carry: Option<CarryRun<'a>>,
}

/// Whether `op` reads the stream it writes — in that case the
/// destination's old buffer is an operand and cannot be recycled.
fn reads_own_dst(op: &Op, dst: usize) -> bool {
    match op {
        Op::And { a, b, .. }
        | Op::Or { a, b, .. }
        | Op::Xor { a, b, .. }
        | Op::Add { a, b, .. } => a.index() == dst || b.index() == dst,
        Op::Not { src, .. }
        | Op::Advance { src, .. }
        | Op::Retreat { src, .. }
        | Op::Assign { src, .. } => src.index() == dst,
        Op::MatchCc { .. } | Op::Zero { .. } | Op::Ones { .. } => false,
    }
}

impl Env<'_> {
    fn run(&mut self, stmts: &[Stmt], ctl: &RunControl) -> Result<(), InterpError> {
        for stmt in stmts {
            if !ctl.is_unlimited() {
                ctl.check()?;
            }
            match stmt {
                Stmt::Op(op) => self.exec(op)?,
                Stmt::If { cond, body } => {
                    // A pending carry inside the body means a marker
                    // crossed the chunk boundary: the body must run even
                    // if the guard is locally empty. Skipping leaves the
                    // body's outgoing carries zero, which is exactly the
                    // no-marker semantics.
                    let (pending, layout) = self.body_carry(body);
                    if self.get(*cond)?.any() || pending {
                        self.run(body, ctl)?;
                    } else if let (Some(run), Some((start, count))) =
                        (&mut self.carry, layout)
                    {
                        run.next = start + count;
                    }
                }
                Stmt::While { cond, body } => {
                    // Defend against non-terminating programs from bad
                    // transforms: a marker fixpoint can never need more
                    // trips than there are positions (plus one forced
                    // trip when a cross-chunk carry is pending).
                    let (pending, layout) = self.body_carry(body);
                    let mut force = pending;
                    let mut fuel = self.len + 2 + usize::from(force);
                    loop {
                        if let (Some(run), Some((start, _))) = (&mut self.carry, layout) {
                            run.next = start;
                        }
                        if !(self.get(*cond)?.any() || force) {
                            break;
                        }
                        force = false;
                        if fuel == 0 {
                            return Err(InterpError::FixpointDiverged);
                        }
                        fuel -= 1;
                        self.loop_trips += 1;
                        self.run(body, ctl)?;
                    }
                    if let (Some(run), Some((start, count))) = (&mut self.carry, layout) {
                        run.next = start + count;
                    }
                }
            }
        }
        Ok(())
    }

    fn exec(&mut self, op: &Op) -> Result<(), InterpError> {
        self.ops_executed += 1;
        let dst = op.dst().index();
        // Loop trips rewrite the same destinations over and over, so the
        // destination's previous buffer is recycled as the output unless
        // the op also reads it.
        let mut reuse =
            if reads_own_dst(op, dst) { None } else { self.vars[dst].take() };
        let mut out = reuse.take().unwrap_or_else(|| BitStream::zeros(self.len));
        let value = match op {
            Op::MatchCc { class, .. } => {
                // Evaluated straight into a window-length stream: the
                // circuit runs word-group at a time with no per-node
                // temporaries, and the peek position stays clear. The
                // compiled circuit is cached per destination.
                if out.len() != self.len {
                    out.reset_zeros(self.len);
                }
                let key = class as *const _ as usize;
                if self.cc[dst].as_ref().map(|(k, _)| *k) != Some(key) {
                    self.cc[dst] = Some((key, compile_class(class)));
                }
                let (_, cc) = self.cc[dst].as_ref().expect("circuit cached above");
                cc.eval_into(self.basis, &mut out);
                out
            }
            Op::And { a, b, .. } => {
                fetch(&self.vars, *a)?.and_into(fetch(&self.vars, *b)?, &mut out);
                out
            }
            Op::Or { a, b, .. } => {
                fetch(&self.vars, *a)?.or_into(fetch(&self.vars, *b)?, &mut out);
                out
            }
            Op::Add { a, b, .. } => {
                let (sa, sb) = (fetch(&self.vars, *a)?, fetch(&self.vars, *b)?);
                match &mut self.carry {
                    Some(run) => {
                        let slot = run.take_slot();
                        run.state.add_through(slot, sa, sb)
                    }
                    None => {
                        sa.add_into(sb, &mut out);
                        out
                    }
                }
            }
            Op::Xor { a, b, .. } => {
                fetch(&self.vars, *a)?.xor_into(fetch(&self.vars, *b)?, &mut out);
                out
            }
            Op::Not { src, .. } => {
                fetch(&self.vars, *src)?.not_into(&mut out);
                out
            }
            Op::Advance { src, amount, .. } => {
                let k = *amount as usize;
                let s = fetch(&self.vars, *src)?;
                match &mut self.carry {
                    Some(run) => {
                        let slot = run.take_slot();
                        run.state.advance_through(slot, s, k)
                    }
                    None => {
                        s.advance_into(k, &mut out);
                        out
                    }
                }
            }
            Op::Retreat { src, amount, .. } => {
                fetch(&self.vars, *src)?.retreat_into(*amount as usize, &mut out);
                out
            }
            Op::Assign { src, .. } => {
                out.copy_from(fetch(&self.vars, *src)?);
                out
            }
            Op::Zero { .. } => {
                out.reset_zeros(self.len);
                out
            }
            Op::Ones { .. } => BitStream::ones(self.len),
        };
        self.vars[dst] = Some(value);
        Ok(())
    }

    /// Slot-walk bookkeeping for a guarded body: whether any of its
    /// incoming carries are pending and where its slots start.
    fn body_carry(&mut self, body: &[Stmt]) -> (bool, Option<(usize, usize)>) {
        match &self.carry {
            None => (false, None),
            Some(run) => {
                let start = run.next;
                let count = carry_slot_count(body);
                (run.state.pending(start..start + count), Some((start, count)))
            }
        }
    }

    fn get(&self, id: StreamId) -> Result<&BitStream, InterpError> {
        fetch(&self.vars, id)
    }
}

/// [`Env::get`] without borrowing the whole environment, so ops can hold
/// a stream reference while mutating the carry state.
fn fetch(vars: &[Option<BitStream>], id: StreamId) -> Result<&BitStream, InterpError> {
    vars[id.index()].as_ref().ok_or(InterpError::UnwrittenStream { id })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, lower_group};
    use bitgen_regex::{match_ends, multi_match_ends, parse};

    fn run(pattern: &str, input: &[u8]) -> Vec<usize> {
        let prog = lower(&parse(pattern).unwrap());
        interpret(&prog, &Basis::transpose(input)).match_ends(0)
    }

    fn assert_agrees(pattern: &str, input: &[u8]) {
        let oracle = match_ends(&parse(pattern).unwrap(), input);
        let got = run(pattern, input);
        assert_eq!(got, oracle, "pattern {pattern:?} on {:?}", String::from_utf8_lossy(input));
    }

    #[test]
    fn paper_cat() {
        assert_eq!(run("cat", b"bobcat"), vec![5]);
    }

    #[test]
    fn paper_figure3() {
        assert_eq!(run("(abc)|d", b"abcdabce"), vec![2, 3, 6]);
    }

    #[test]
    fn paper_listing3() {
        assert_eq!(run("a(bc)*d", b"ad"), vec![1]);
        assert_eq!(run("a(bc)*d", b"abcbcd"), vec![5]);
        assert_eq!(run("a(bc)*d", b"abcbc"), vec![]);
    }

    #[test]
    fn agrees_with_oracle_on_basics() {
        for (pat, input) in [
            ("a+", &b"xaaax"[..]),
            ("a*", b"baab"),
            ("ab|bc", b"abcabc"),
            ("a?b", b"ab_b_cb"),
            ("a{2,3}", b"aaaaa"),
            ("a{2,}", b"aaaa"),
            ("[a-c]+[0-9]", b"abc9 x1 c2"),
            (".a.", b"xaxya\n a"),
            ("(a|bb)*c", b"abbac bbc c"),
            ("a(bc)*d", b"adxabcd.abcbcbcd"),
        ] {
            assert_agrees(pat, input);
        }
    }

    #[test]
    fn match_at_final_byte_survives() {
        assert_agrees("ab", b"xxab");
        assert_agrees("a+", b"xxaa");
    }

    #[test]
    fn empty_input() {
        assert_eq!(run("a+", b""), vec![]);
    }

    #[test]
    fn group_outputs_are_independent() {
        let asts = vec![parse("ab").unwrap(), parse("bc").unwrap()];
        let prog = lower_group(&asts);
        let r = interpret(&prog, &Basis::transpose(b"abcabc"));
        assert_eq!(r.match_ends(0), vec![1, 4]);
        assert_eq!(r.match_ends(1), vec![2, 5]);
        assert_eq!(r.union().positions(), multi_match_ends(&asts, b"abcabc"));
    }

    #[test]
    fn loop_trips_counted() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let r = interpret(&prog, &Basis::transpose(b"abcbcbcd"));
        // Frontier survives three (bc) passes plus the emptying trip.
        assert!(r.loop_trips >= 3, "got {}", r.loop_trips);
        assert!(r.ops_executed > prog.op_count());
    }

    #[test]
    #[should_panic(expected = "unwritten stream")]
    fn reading_unwritten_stream_panics() {
        use crate::program::{Program, Stmt, Op, StreamId};
        let prog = Program::new(
            vec![Stmt::Op(Op::Not { dst: StreamId(1), src: StreamId(0) })],
            2,
            vec![StreamId(1)],
        );
        interpret(&prog, &Basis::transpose(b"x"));
    }

    #[test]
    fn try_interpret_reports_unwritten_stream() {
        use crate::program::{Program, Stmt, Op, StreamId};
        let prog = Program::new(
            vec![Stmt::Op(Op::Not { dst: StreamId(1), src: StreamId(0) })],
            2,
            vec![StreamId(1)],
        );
        let err = try_interpret(&prog, &Basis::transpose(b"x"), &RunControl::unlimited())
            .unwrap_err();
        assert_eq!(err, InterpError::UnwrittenStream { id: StreamId(0) });
    }

    fn chunked_union(prog: &crate::program::Program, input: &[u8], sizes: &[usize]) -> Vec<usize> {
        let mut carry = CarryState::for_program(prog);
        let mut ends = Vec::new();
        let mut off = 0usize;
        let mut rest = input;
        let mut i = 0usize;
        while !rest.is_empty() {
            let take = sizes[i % sizes.len()].min(rest.len());
            i += 1;
            if take == 0 {
                continue;
            }
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let r = try_interpret_chunk(
                prog,
                &Basis::transpose(chunk),
                &RunControl::unlimited(),
                &mut carry,
            )
            .unwrap();
            ends.extend(
                r.union().positions().into_iter().filter(|&p| p < chunk.len()).map(|p| off + p),
            );
            carry.rotate();
            off += chunk.len();
        }
        ends
    }

    #[test]
    fn chunked_interpretation_matches_batch() {
        for (pat, input) in [
            ("a+b", &b"xaaab aab b ab"[..]),
            ("a(bc)*d", b"adxabcd.abcbcbcd"),
            ("a{2,}", b"aaaa a aaa"),
            ("(a|bb)*c", b"abbac bbc c"),
            (".a.", b"xaxya\n a"),
            ("ab", b"xxab"),
            ("[a-c]+[0-9]", b"abc9 x1 c2"),
        ] {
            let prog = lower(&parse(pat).unwrap());
            let batch = interpret(&prog, &Basis::transpose(input)).union().positions();
            for sizes in [&[1usize][..], &[2], &[3], &[5, 1], &[7, 2], &[64], &[100]] {
                let got = chunked_union(&prog, input, sizes);
                assert_eq!(got, batch, "pattern {pat:?} chunk sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn chunked_match_star_carries_additions() {
        use crate::lower::{lower_group_with, LowerOptions};
        let opts = LowerOptions { match_star: true, ..LowerOptions::default() };
        for (pat, input) in [("a*b", &b"baaab aab"[..]), ("x[ab]*y", b"xy xabay xaaaaay")] {
            let prog = lower_group_with(&[parse(pat).unwrap()], opts);
            let batch = interpret(&prog, &Basis::transpose(input)).union().positions();
            for sizes in [&[1usize][..], &[2], &[3, 1], &[5]] {
                assert_eq!(
                    chunked_union(&prog, input, sizes),
                    batch,
                    "pattern {pat:?} chunk sizes {sizes:?}"
                );
            }
        }
    }

    #[test]
    fn single_chunk_equals_batch_interpretation() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let input = b"abcbcd ad";
        let batch = interpret(&prog, &Basis::transpose(input));
        let mut carry = CarryState::for_program(&prog);
        let chunked = try_interpret_chunk(
            &prog,
            &Basis::transpose(input),
            &RunControl::unlimited(),
            &mut carry,
        )
        .unwrap();
        assert_eq!(chunked.outputs, batch.outputs);
    }

    #[test]
    fn try_interpret_honours_cancellation() {
        use crate::control::CancelToken;
        let prog = lower(&parse("a(bc)*d").unwrap());
        let basis = Basis::transpose(b"abcbcbcd");
        let token = CancelToken::new();
        token.cancel();
        let ctl = RunControl::unlimited().with_cancel(token);
        assert_eq!(try_interpret(&prog, &basis, &ctl).unwrap_err(), InterpError::Cancelled);
    }

    #[test]
    fn try_interpret_honours_deadlines() {
        use std::time::{Duration, Instant};
        let prog = lower(&parse("a(bc)*d").unwrap());
        let basis = Basis::transpose(b"abcbcbcd");
        let expired = RunControl::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(
            try_interpret(&prog, &basis, &expired).unwrap_err(),
            InterpError::DeadlineExceeded
        );
        // A generous deadline changes nothing.
        let lax = RunControl::unlimited().deadline_in(Duration::from_secs(3600));
        let r = try_interpret(&prog, &basis, &lax).unwrap();
        assert_eq!(r.outputs[0].positions(), interpret(&prog, &basis).outputs[0].positions());
    }
}

//! Lowering regular expressions to bitstream programs (Fig. 2 of the paper).
//!
//! The lowering works in *cursor* semantics: a cursor stream holds a 1 at
//! position *i* when the next character of a candidate match is at *i*.
//! Matching a character class keeps the cursors sitting on a matching byte
//! and advances them one position (`(C & S_cc) >> 1`); concatenation is
//! composition; alternation is union; Kleene star is the Fig. 2e fixpoint
//! loop; bounded repetition is unrolled as in Fig. 2d.
//!
//! Matches are reported under all-match semantics. Because the initial
//! cursor stream is all-ones (a match may start anywhere), a nullable regex
//! would report a spurious zero-width "match" at every position; the
//! [`strip_nullable`] rewrite removes the empty match from the language
//! before lowering, so only matches that consumed at least one byte are
//! reported — the same convention as the validation oracle.

use crate::builder::ProgramBuilder;
use crate::limits::{CompileLimits, LimitError};
use crate::program::{Program, StreamId};
use bitgen_regex::Ast;
use std::collections::HashSet;

/// Options controlling the lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LowerOptions {
    /// Lower `C*` over a single character class with the Parabix
    /// `MatchStar` identity instead of a fixpoint loop:
    ///
    /// ```text
    /// MatchStar(M, C) = (((M ∧ C) + C) ⊕ C) ∨ M
    /// ```
    ///
    /// Four straight-line instructions (one long addition) replace a
    /// whole `while` loop — an icgrep technique the paper's substrate
    /// uses, kept optional here because the paper's own lowering
    /// (Fig. 2e) uses the loop. Carry chains are a cross-block
    /// dependency handled dynamically, like loop trips.
    pub match_star: bool,
    /// Lower the mandatory part of `C{n,m}` over a single class with
    /// O(log n) instructions by prefix-doubling run streams
    /// (`R_2k = R_k ∧ (R_k >> k)`), instead of the Fig. 2d linear
    /// unrolling. Off by default (the paper unrolls linearly).
    pub log_repetition: bool,
}

/// Lowers a group of regexes into one bitstream program.
///
/// This is the unit the paper assigns to one CTA: all character classes are
/// materialised up front (as in Listing 3), then each regex contributes its
/// matching instructions, and the program exposes one match-end output
/// stream per regex.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::lower_group;
///
/// let asts = vec![parse("a(bc)*d").unwrap(), parse("cat").unwrap()];
/// let prog = lower_group(&asts);
/// assert_eq!(prog.outputs().len(), 2);
/// assert_eq!(prog.while_count(), 1);
/// ```
pub fn lower_group(asts: &[Ast]) -> Program {
    lower_group_with(asts, LowerOptions::default())
}

/// Lowers a group of regexes with explicit [`LowerOptions`].
pub fn lower_group_with(asts: &[Ast], options: LowerOptions) -> Program {
    lower_group_checked(asts, options, &CompileLimits::unbounded())
        .expect("unbounded compile limits can never be exceeded")
}

/// Lowers a group of regexes while enforcing [`CompileLimits`].
///
/// The checks abort *before* the over-budget work is performed — the node
/// budget is verified before the nullable rewrite runs (and charged as the
/// rewrite grows the tree), and the instruction budget is polled on every
/// recursion step — so compile time stays proportional to the limits, not
/// to the pathological input.
pub fn lower_group_checked(
    asts: &[Ast],
    options: LowerOptions,
    limits: &CompileLimits,
) -> Result<Program, LimitError> {
    let nodes: usize = asts.iter().map(Ast::node_count).sum();
    if nodes > limits.max_ast_nodes {
        return Err(LimitError::AstNodes { nodes, max: limits.max_ast_nodes });
    }
    // The nullable rewrite duplicates concat suffixes, so its output is
    // charged against the same node budget as the parse tree.
    let mut stripped = Vec::with_capacity(asts.len());
    for ast in asts {
        let mut budget = limits.max_ast_nodes;
        stripped.push(strip_nullable_within(ast, &mut budget, limits.max_ast_nodes)?);
    }
    let mut distinct = HashSet::new();
    for ast in stripped.iter().flatten() {
        ast.for_each_class(&mut |cc| {
            distinct.insert(*cc);
        });
    }
    if distinct.len() > limits.max_classes {
        return Err(LimitError::Classes { classes: distinct.len(), max: limits.max_classes });
    }
    let mut b = ProgramBuilder::new();
    // Hoist all character-class matches to the top of the program, exactly
    // as Listing 3 does — they are loop-invariant and shared.
    for ast in stripped.iter().flatten() {
        ast.for_each_class(&mut |cc| {
            b.match_cc(*cc);
        });
    }
    let init = b.ones();
    for ast in &stripped {
        match ast {
            Some(ast) => {
                let cursors = lower_node(&mut b, ast, init, options, limits)?;
                // A cursor at position p means the match consumed input[..p],
                // i.e. ended at byte p-1: retreat by one gives match ends.
                let ends = b.retreat(cursors, 1);
                b.mark_output(ends);
            }
            None => {
                // The regex matches nothing (it only matched the empty
                // string): its output stream is constantly zero.
                let z = b.zero();
                b.mark_output(z);
            }
        }
    }
    Ok(b.finish())
}

/// Lowers a single regex into a bitstream program with one output.
pub fn lower(ast: &Ast) -> Program {
    lower_group(std::slice::from_ref(ast))
}

/// Aborts the lowering once the instruction budget is spent.
///
/// Polled at every recursion step, so unrolled repetitions stop within one
/// body's worth of instructions of the cap.
fn check_ops(b: &ProgramBuilder, limits: &CompileLimits) -> Result<(), LimitError> {
    if b.ops_emitted() > limits.max_ir_ops {
        Err(LimitError::IrOps { ops: b.ops_emitted(), max: limits.max_ir_ops })
    } else {
        Ok(())
    }
}

/// Recursively lowers `ast`, advancing the cursor stream `cursors`.
///
/// Returns the stream of cursors after a successful match of `ast`.
fn lower_node(
    b: &mut ProgramBuilder,
    ast: &Ast,
    cursors: StreamId,
    opts: LowerOptions,
    limits: &CompileLimits,
) -> Result<StreamId, LimitError> {
    check_ops(b, limits)?;
    Ok(match ast {
        Ast::Empty => cursors,
        Ast::Class(cc) => {
            let s_cc = b.match_cc(*cc);
            let on_class = b.and(cursors, s_cc);
            b.advance(on_class, 1)
        }
        Ast::Concat(parts) => {
            let mut cur = cursors;
            for p in parts {
                cur = lower_node(b, p, cur, opts, limits)?;
            }
            cur
        }
        Ast::Alt(parts) => {
            let mut acc: Option<StreamId> = None;
            for p in parts {
                let r = lower_node(b, p, cursors, opts, limits)?;
                acc = Some(match acc {
                    None => r,
                    Some(a) => b.or(a, r),
                });
            }
            acc.unwrap_or(cursors)
        }
        Ast::Star(inner) => lower_star(b, inner, cursors, opts, limits)?,
        Ast::Plus(inner) => {
            let first = lower_node(b, inner, cursors, opts, limits)?;
            lower_star(b, inner, first, opts, limits)?
        }
        Ast::Opt(inner) => {
            let taken = lower_node(b, inner, cursors, opts, limits)?;
            b.or(cursors, taken)
        }
        Ast::Repeat { node, min, max } => {
            let mut cur = cursors;
            if opts.log_repetition && *min >= 4 {
                if let Ast::Class(cc) = &**node {
                    cur = lower_repeat_log(b, *cc, cur, *min);
                } else {
                    for _ in 0..*min {
                        cur = lower_node(b, node, cur, opts, limits)?;
                    }
                }
            } else {
                for _ in 0..*min {
                    cur = lower_node(b, node, cur, opts, limits)?;
                }
            }
            match max {
                None => lower_star(b, node, cur, opts, limits)?,
                Some(m) => {
                    // Fig. 2d: unroll the optional repetitions, OR-ing each
                    // intermediate cursor set into the result.
                    let mut acc = cur;
                    for _ in *min..*m {
                        cur = lower_node(b, node, cur, opts, limits)?;
                        acc = b.or(acc, cur);
                    }
                    acc
                }
            }
        }
    })
}

/// Kleene star: the Parabix `MatchStar` identity when the body is a single
/// character class (and the option is on), otherwise the Fig. 2e fixpoint
/// loop — all cursors reachable from `start` by zero or more passes
/// through `inner`.
fn lower_star(
    b: &mut ProgramBuilder,
    inner: &Ast,
    start: StreamId,
    opts: LowerOptions,
    limits: &CompileLimits,
) -> Result<StreamId, LimitError> {
    if opts.match_star {
        if let Ast::Class(cc) = inner {
            // MatchStar(M, C) = (((M & C) + C) ^ C) | M: a marker sitting
            // on a run of C generates a carry that ripples to the first
            // position past the run; XOR extracts every rippled-through
            // position, OR restores the zero-width case. With no marker on
            // a class byte in the block, `on + C = C` and the ripple is
            // exactly zero — so the carry scan (a barrier pair on the GPU)
            // is guarded the zero-block-skipping way.
            let c = b.match_cc(*cc);
            let on = b.and(start, c);
            let ripple = b.zero();
            b.if_block(on, |b| {
                let sum = b.add(on, c);
                let x = b.xor(sum, c);
                b.assign_to(ripple, x);
            });
            return Ok(b.or(ripple, start));
        }
    }
    let accum = b.assign_new(start);
    let frontier = b.assign_new(start);
    // The closure API cannot return early, so a budget trip inside the
    // loop body is parked and re-raised once the frame is closed.
    let mut over_budget = None;
    b.while_loop(frontier, |b| {
        match lower_node(b, inner, frontier, opts, limits) {
            Ok(stepped) => {
                let not_acc = b.not(accum);
                // Only genuinely new cursors continue; this is what
                // guarantees the fixpoint terminates.
                b.and_into(frontier, stepped, not_acc);
                b.or_into(accum, frontier);
            }
            Err(e) => over_budget = Some(e),
        }
    });
    match over_budget {
        Some(e) => Err(e),
        None => Ok(accum),
    }
}

/// Advances `cursors` through exactly `n` characters of class `cc` with
/// O(log n) instructions.
///
/// Builds run streams by prefix doubling — `R_k[j]` is set when the `k`
/// bytes ending at `j` all match `cc`, and `R_{a+b} = R_b ∧ (R_a >> b)` —
/// then combines the binary decomposition of `n`. The final cursors are
/// `(C >> n) ∧ (R_n >> 1)`.
fn lower_repeat_log(b: &mut ProgramBuilder, cc: bitgen_regex::ByteSet, cursors: StreamId, n: u32) -> StreamId {
    debug_assert!(n >= 1);
    let t = b.match_cc(cc);
    // Powers of two: R_1 = T, R_2, R_4, ... up to the highest bit of n.
    let mut powers: Vec<(u32, StreamId)> = vec![(1, t)];
    let mut k = 1;
    while k * 2 <= n {
        let (_, prev) = *powers.last().expect("at least R_1");
        let shifted = b.advance(prev, k);
        let doubled = b.and(prev, shifted);
        k *= 2;
        powers.push((k, doubled));
    }
    // Combine the set bits of n, lowest first.
    let mut acc: Option<(u32, StreamId)> = None;
    for &(p, r) in &powers {
        if n & p == 0 {
            continue;
        }
        acc = Some(match acc {
            None => (p, r),
            Some((len, a)) => {
                let shifted = b.advance(r, len);
                (len + p, b.and(a, shifted))
            }
        });
    }
    let (total, runs) = acc.expect("n >= 1 has at least one set bit");
    debug_assert_eq!(total, n);
    let moved = b.advance(cursors, n);
    let runs_at_cursor = b.advance(runs, 1);
    b.and(moved, runs_at_cursor)
}

/// Rewrites `ast` so its language no longer contains the empty string.
///
/// Returns `None` when the language becomes empty (the regex matched *only*
/// the empty string). The rewrite preserves all non-empty matches:
///
/// - `nonempty(R1 R2) = nonempty(R1) R2 | nonempty(R2)` (second branch only
///   when `R1` is nullable);
/// - `nonempty(R*) = nonempty(R) R*`;
/// - for nullable `R`, `R{n,m} ≡ R{0,m}`, so
///   `nonempty(R{n,m}) = nonempty(R) R{0,m-1}`.
pub fn strip_nullable(ast: &Ast) -> Option<Ast> {
    let mut budget = usize::MAX;
    strip_nullable_within(ast, &mut budget, usize::MAX)
        .expect("an unbounded node budget can never be exhausted")
}

/// Deducts `cost` nodes from the rewrite budget, aborting when spent.
fn charge(budget: &mut usize, cost: usize, max: usize) -> Result<(), LimitError> {
    if *budget < cost {
        // The rewrite stops before materialising the clone, so only a
        // lower bound on the final size is known.
        return Err(LimitError::AstNodes { nodes: max.saturating_add(1), max });
    }
    *budget -= cost;
    Ok(())
}

/// [`strip_nullable`] with every constructed node charged against `budget`.
///
/// The concat rule duplicates suffixes, so a nest of nullable concats can
/// grow multiplicatively; charging before each clone bounds both the
/// output size and the rewrite's own running time by `max`.
fn strip_nullable_within(
    ast: &Ast,
    budget: &mut usize,
    max: usize,
) -> Result<Option<Ast>, LimitError> {
    if !ast.is_nullable() {
        charge(budget, ast.node_count(), max)?;
        return Ok(Some(ast.clone()));
    }
    Ok(match ast {
        Ast::Empty => None,
        Ast::Class(_) => unreachable!("classes are never nullable"),
        Ast::Concat(parts) => {
            // Find non-empty variants where at least one part consumes.
            // nonempty(R1 R2 ... Rn) = Σ_i (R1..R_{i-1} nullable) ·
            //                              nonempty(R_i) · R_{i+1}..Rn
            // All prefixes here are nullable (the whole concat is), so the
            // prefix contributes nothing once stripped to its empty match.
            let mut branches = Vec::new();
            for (i, p) in parts.iter().enumerate() {
                if let Some(ne) = strip_nullable_within(p, budget, max)? {
                    let suffix: usize = parts[i + 1..].iter().map(Ast::node_count).sum();
                    charge(budget, suffix + 1, max)?;
                    let mut seq = vec![ne];
                    seq.extend(parts[i + 1..].iter().cloned());
                    branches.push(if seq.len() == 1 {
                        seq.pop().expect("one element")
                    } else {
                        Ast::Concat(seq)
                    });
                }
                // Parts before i must match empty, which nullability of the
                // whole concat guarantees they can.
            }
            match branches.len() {
                0 => None,
                1 => Some(branches.pop().expect("one element")),
                _ => Some(Ast::Alt(branches)),
            }
        }
        Ast::Alt(parts) => {
            let mut branches = Vec::new();
            for p in parts {
                if let Some(ne) = strip_nullable_within(p, budget, max)? {
                    branches.push(ne);
                }
            }
            match branches.len() {
                0 => None,
                1 => Some(branches.pop().expect("one element")),
                _ => Some(Ast::Alt(branches)),
            }
        }
        Ast::Star(inner) | Ast::Plus(inner) => match strip_nullable_within(inner, budget, max)? {
            None => None,
            Some(ne) => {
                charge(budget, inner.node_count() + 2, max)?;
                Some(Ast::Concat(vec![ne, Ast::Star(inner.clone())]))
            }
        },
        Ast::Opt(inner) => strip_nullable_within(inner, budget, max)?,
        Ast::Repeat { node, max: repeat_max, .. } => {
            // The whole repeat is nullable, so either min == 0 or node is
            // nullable; in both cases R{n,m} ≡ R{0,m}.
            match strip_nullable_within(node, budget, max)? {
                None => None,
                Some(ne) => match repeat_max {
                    None => {
                        charge(budget, node.node_count() + 2, max)?;
                        Some(Ast::Concat(vec![ne, Ast::Star(node.clone())]))
                    }
                    Some(m) if *m <= 1 => Some(ne),
                    Some(m) => {
                        charge(budget, node.node_count() + 2, max)?;
                        Some(Ast::Concat(vec![
                            ne,
                            Ast::Repeat { node: node.clone(), min: 0, max: Some(m - 1) },
                        ]))
                    }
                },
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::parse;

    #[test]
    fn listing3_shape() {
        // /a(bc)*d/ should produce 4 character classes and one while loop.
        let prog = lower(&parse("a(bc)*d").unwrap());
        assert_eq!(prog.classes().len(), 4);
        assert_eq!(prog.while_count(), 1);
        assert_eq!(prog.outputs().len(), 1);
    }

    #[test]
    fn literal_has_no_loops() {
        let prog = lower(&parse("cat").unwrap());
        assert_eq!(prog.while_count(), 0);
        // 3 MatchCc + ones + 3×(and+advance) + retreat = 11.
        assert_eq!(prog.op_count(), 11);
    }

    #[test]
    fn alternation_shares_classes() {
        let prog = lower(&parse("ab|ba").unwrap());
        // Only two distinct classes despite four leaves.
        assert_eq!(prog.classes().len(), 2);
    }

    #[test]
    fn strip_nullable_star() {
        let ast = parse("a*").unwrap();
        let ne = strip_nullable(&ast).unwrap();
        assert!(!ne.is_nullable());
        assert_eq!(ne, Ast::Concat(vec![
            Ast::literal(b"a"),
            Ast::Star(Box::new(Ast::literal(b"a"))),
        ]));
    }

    #[test]
    fn strip_nullable_concat() {
        let ast = parse("a?b?").unwrap();
        let ne = strip_nullable(&ast).unwrap();
        assert!(!ne.is_nullable());
        // Language must be {a, b, ab}: check via the oracle.
        use bitgen_regex::match_ends;
        assert_eq!(match_ends(&ne, b"ab"), vec![0, 1]);
        assert_eq!(match_ends(&ne, b"xy"), vec![]);
    }

    #[test]
    fn strip_nullable_empty_only() {
        assert_eq!(strip_nullable(&Ast::Empty), None);
        let opt_empty = Ast::Opt(Box::new(Ast::Empty));
        assert_eq!(strip_nullable(&opt_empty), None);
        let star_empty = Ast::Star(Box::new(Ast::Empty));
        assert_eq!(strip_nullable(&star_empty), None);
    }

    #[test]
    fn strip_nullable_preserves_non_nullable() {
        let ast = parse("ab+").unwrap();
        assert_eq!(strip_nullable(&ast), Some(ast));
    }

    #[test]
    fn strip_nullable_repeat() {
        let ast = parse("(?:ab){0,3}").unwrap();
        let ne = strip_nullable(&ast).unwrap();
        assert!(!ne.is_nullable());
        use bitgen_regex::match_ends;
        assert_eq!(match_ends(&ne, b"ababab"), vec![1, 3, 5]);
    }

    #[test]
    fn match_star_replaces_loops_for_class_stars() {
        let opts = LowerOptions { match_star: true, ..LowerOptions::default() };
        let asts = vec![parse("a[x-z]*b").unwrap()];
        let prog = lower_group_with(&asts, opts);
        assert_eq!(prog.while_count(), 0, "class star needs no loop:\n{}", crate::pretty(&prog));
        // Group stars still need the loop.
        let grouped = lower_group_with(&[parse("a(bc)*d").unwrap()], opts);
        assert_eq!(grouped.while_count(), 1);
    }

    #[test]
    fn match_star_agrees_with_loop_lowering() {
        use crate::interp::interpret;
        use bitgen_bitstream::Basis;
        for (pat, input) in [
            ("a[b-d]*e", &b"abcde ae axe abbbbe"[..]),
            ("x.*y", b"xy x123y\nxz y"),
            ("[0-9]*z", b"42z z 7z xz"),
            ("a[ab]*b", b"aab abab bb"),
            ("q[w]*", b"q qw qwww"),
        ] {
            let asts = vec![parse(pat).unwrap()];
            let with_loop = lower_group_with(&asts, LowerOptions { match_star: false, ..LowerOptions::default() });
            let with_add = lower_group_with(&asts, LowerOptions { match_star: true, ..LowerOptions::default() });
            let basis = Basis::transpose(input);
            assert_eq!(
                interpret(&with_add, &basis).outputs[0].positions(),
                interpret(&with_loop, &basis).outputs[0].positions(),
                "pattern {pat:?}"
            );
        }
    }

    #[test]
    fn log_repetition_agrees_with_linear() {
        use crate::interp::interpret;
        use bitgen_bitstream::Basis;
        for (pat, input) in [
            ("a{4}", &b"aaaaaa baaaa"[..]),
            ("a{5}b", b"aaaaab aaaab"),
            ("[0-9]{7}x", b"1234567x 123456x 12345678x"),
            ("a{6,8}", b"aaaaaaaaaa"),
            ("x[a-c]{12}y", b"xabcabcabcabcy xabcy"),
        ] {
            let asts = vec![parse(pat).unwrap()];
            let linear = lower_group_with(&asts, LowerOptions::default());
            let log = lower_group_with(
                &asts,
                LowerOptions { log_repetition: true, ..LowerOptions::default() },
            );
            let basis = Basis::transpose(input);
            assert_eq!(
                interpret(&log, &basis).outputs[0].positions(),
                interpret(&linear, &basis).outputs[0].positions(),
                "pattern {pat:?}"
            );
        }
    }

    #[test]
    fn log_repetition_shrinks_programs() {
        let asts = vec![parse("[a-f]{64}").unwrap()];
        let linear = lower_group_with(&asts, LowerOptions::default());
        let log = lower_group_with(
            &asts,
            LowerOptions { log_repetition: true, ..LowerOptions::default() },
        );
        assert!(
            log.op_count() * 4 < linear.op_count(),
            "O(log n): {} vs {}",
            log.op_count(),
            linear.op_count()
        );
    }

    #[test]
    fn match_star_handles_run_to_stream_end() {
        use crate::interp::interpret;
        use bitgen_bitstream::Basis;
        // The carry must stop exactly at the end-of-input sentinel.
        let asts = vec![parse("ba*").unwrap()];
        let prog = lower_group_with(&asts, LowerOptions { match_star: true, ..LowerOptions::default() });
        let basis = Basis::transpose(b"baaaa");
        assert_eq!(interpret(&prog, &basis).outputs[0].positions(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn group_lowering_outputs_per_regex() {
        let asts = vec![parse("ab").unwrap(), parse("b*").unwrap(), Ast::Empty];
        let prog = lower_group(&asts);
        assert_eq!(prog.outputs().len(), 3);
    }

    #[test]
    fn bounded_repeat_unrolls() {
        let p3 = lower(&parse("a{3}").unwrap());
        let p5 = lower(&parse("a{5}").unwrap());
        assert!(p5.op_count() > p3.op_count());
        assert_eq!(p3.while_count(), 0);
    }

    #[test]
    fn open_repeat_uses_loop() {
        let prog = lower(&parse("a{2,}").unwrap());
        assert_eq!(prog.while_count(), 1);
    }

    #[test]
    fn checked_lowering_matches_unchecked_under_unbounded_limits() {
        let asts = vec![parse("a(bc)*d").unwrap(), parse("x?y?z?").unwrap()];
        let unchecked = lower_group_with(&asts, LowerOptions::default());
        let checked =
            lower_group_checked(&asts, LowerOptions::default(), &CompileLimits::unbounded())
                .unwrap();
        assert_eq!(crate::pretty(&unchecked), crate::pretty(&checked));
    }

    #[test]
    fn node_budget_rejects_large_groups() {
        let limits = CompileLimits { max_ast_nodes: 8, ..CompileLimits::unbounded() };
        let asts = vec![parse("abcdefghijkl").unwrap()];
        let err = lower_group_checked(&asts, LowerOptions::default(), &limits).unwrap_err();
        assert!(matches!(err, LimitError::AstNodes { nodes: 13, max: 8 }));
    }

    #[test]
    fn node_budget_bounds_nullable_rewrite_growth() {
        // Nested nullable concats multiply under strip_nullable; the parse
        // tree itself stays small, so only the rewrite charge can trip.
        let pat = "(?:a?b?c?d?)(?:e?f?g?h?)(?:i?j?k?l?)(?:m?n?o?p?)";
        let ast = parse(pat).unwrap();
        let small = CompileLimits { max_ast_nodes: ast.node_count() + 8, ..CompileLimits::unbounded() };
        let err = lower_group_checked(
            std::slice::from_ref(&ast),
            LowerOptions::default(),
            &small,
        )
        .unwrap_err();
        assert!(matches!(err, LimitError::AstNodes { .. }));
    }

    #[test]
    fn class_budget_rejects_wide_groups() {
        let limits = CompileLimits { max_classes: 3, ..CompileLimits::unbounded() };
        let asts = vec![parse("abcd").unwrap()];
        let err = lower_group_checked(&asts, LowerOptions::default(), &limits).unwrap_err();
        assert!(matches!(err, LimitError::Classes { classes: 4, max: 3 }));
        // Repeated classes are deduplicated before the check.
        let ok = vec![parse("abcabcabc").unwrap()];
        assert!(lower_group_checked(&ok, LowerOptions::default(), &limits).is_ok());
    }

    #[test]
    fn ir_budget_stops_nested_repetition_blowup() {
        // ~60 AST nodes, ~40k instructions when unrolled: the op budget
        // must stop the unrolling long before it completes.
        let limits = CompileLimits { max_ir_ops: 500, ..CompileLimits::unbounded() };
        let asts = vec![parse("(?:(?:ab){100}){100}").unwrap()];
        let err = lower_group_checked(&asts, LowerOptions::default(), &limits).unwrap_err();
        match err {
            LimitError::IrOps { ops, max } => {
                assert_eq!(max, 500);
                // Aborted within one recursion step of the cap.
                assert!(ops <= 520, "kept emitting past the budget: {ops}");
            }
            other => panic!("expected IrOps, got {other:?}"),
        }
    }

    #[test]
    fn ir_budget_stops_fixpoint_loop_bodies() {
        let limits = CompileLimits { max_ir_ops: 50, ..CompileLimits::unbounded() };
        let asts = vec![parse("(?:(?:ab){40})*").unwrap()];
        let err = lower_group_checked(&asts, LowerOptions::default(), &limits).unwrap_err();
        assert!(matches!(err, LimitError::IrOps { .. }));
    }
}

//! Cooperative cancellation and deadlines for long-running scans.
//!
//! A scan over gigabytes of input can run for a long time; a pathological
//! pattern can make even a small input slow. [`RunControl`] carries an
//! optional [`CancelToken`] and an optional deadline, and the interpreter
//! and execution engines poll it at word-chunk granularity — often enough
//! to stop within microseconds, rarely enough that the check is free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shareable flag that requests a run to stop.
///
/// Clones share the same flag; any clone may cancel, and all observers see
/// it. Cancellation is cooperative — workers notice at their next poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a cooperative run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The run's [`CancelToken`] was triggered.
    Cancelled,
    /// The run's deadline passed.
    DeadlineExceeded,
}

/// Per-run control block: an optional cancel token and an optional
/// deadline, polled cooperatively by the interpreter and the executors.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl RunControl {
    /// A control block that never interrupts.
    pub fn unlimited() -> RunControl {
        RunControl::default()
    }

    /// Attaches a cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> RunControl {
        self.cancel = Some(token);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> RunControl {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn deadline_in(self, timeout: Duration) -> RunControl {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Whether this control block can ever interrupt (lets hot loops skip
    /// the poll entirely).
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// Polls the token and the clock.
    pub fn check(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let ctl = RunControl::unlimited();
        assert!(ctl.is_unlimited());
        assert_eq!(ctl.check(), Ok(()));
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let ctl = RunControl::unlimited().with_cancel(token.clone());
        assert_eq!(ctl.check(), Ok(()));
        token.cancel();
        assert_eq!(ctl.check(), Err(Interrupt::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn past_deadline_interrupts() {
        let ctl = RunControl::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(ctl.check(), Err(Interrupt::DeadlineExceeded));
        let far = RunControl::unlimited().deadline_in(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
    }
}

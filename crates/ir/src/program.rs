//! The bitstream-program IR.
//!
//! Mirrors the grammar of Listing 2 in the paper: a program is a sequence
//! of statements; a statement is either a bitstream instruction (bitwise
//! ops, shifts by immediate constants, character-class matches) or a
//! control-flow construct (`if`/`while`) whose condition is "does this
//! bitstream contain any set bit".

use bitgen_regex::ByteSet;
use std::fmt;

/// Identifier of a bitstream variable within a [`Program`].
///
/// Variables are mutable (loop accumulators are reassigned each trip), so
/// this is a plain variable id, not an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// Index into dense per-variable tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A single bitstream instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `dst = match(basis, class)`: the character-class bitstream (Fig. 2a).
    MatchCc {
        /// Destination variable.
        dst: StreamId,
        /// The byte class to match.
        class: ByteSet,
    },
    /// `dst = a & b`.
    And {
        /// Destination variable.
        dst: StreamId,
        /// Left operand.
        a: StreamId,
        /// Right operand.
        b: StreamId,
    },
    /// `dst = a | b`.
    Or {
        /// Destination variable.
        dst: StreamId,
        /// Left operand.
        a: StreamId,
        /// Right operand.
        b: StreamId,
    },
    /// `dst = a + b`: long-stream addition, carries rippling toward
    /// higher positions. Not part of the paper's Listing 2 grammar; used
    /// by the optional Parabix-style `MatchStar` lowering, where it
    /// replaces a whole fixpoint loop. Carries are a second kind of
    /// cross-block dependency, handled dynamically like loop trips.
    Add {
        /// Destination variable.
        dst: StreamId,
        /// Left operand.
        a: StreamId,
        /// Right operand.
        b: StreamId,
    },
    /// `dst = a ^ b`.
    Xor {
        /// Destination variable.
        dst: StreamId,
        /// Left operand.
        a: StreamId,
        /// Right operand.
        b: StreamId,
    },
    /// `dst = ~src`.
    Not {
        /// Destination variable.
        dst: StreamId,
        /// Operand.
        src: StreamId,
    },
    /// `dst = src >> amount` in the paper's notation: markers move toward
    /// higher positions (bit *i* of `dst` = bit *i − amount* of `src`).
    Advance {
        /// Destination variable.
        dst: StreamId,
        /// Operand.
        src: StreamId,
        /// Shift distance in bits (> 0).
        amount: u32,
    },
    /// `dst = src << amount`: markers move toward lower positions (bit *i*
    /// of `dst` = bit *i + amount* of `src`). Introduced by operand
    /// rewriting (§5.2), never by lowering.
    Retreat {
        /// Destination variable.
        dst: StreamId,
        /// Operand.
        src: StreamId,
        /// Shift distance in bits (> 0).
        amount: u32,
    },
    /// `dst = src` (plain copy; loop accumulator initialisation).
    Assign {
        /// Destination variable.
        dst: StreamId,
        /// Source variable.
        src: StreamId,
    },
    /// `dst = 0`.
    Zero {
        /// Destination variable.
        dst: StreamId,
    },
    /// `dst = 1...1` (all positions set).
    Ones {
        /// Destination variable.
        dst: StreamId,
    },
}

impl Op {
    /// The variable this instruction writes.
    pub fn dst(&self) -> StreamId {
        match *self {
            Op::MatchCc { dst, .. }
            | Op::And { dst, .. }
            | Op::Or { dst, .. }
            | Op::Add { dst, .. }
            | Op::Xor { dst, .. }
            | Op::Not { dst, .. }
            | Op::Advance { dst, .. }
            | Op::Retreat { dst, .. }
            | Op::Assign { dst, .. }
            | Op::Zero { dst }
            | Op::Ones { dst } => dst,
        }
    }

    /// The variables this instruction reads, in operand order.
    pub fn sources(&self) -> Vec<StreamId> {
        match *self {
            Op::MatchCc { .. } | Op::Zero { .. } | Op::Ones { .. } => vec![],
            Op::Not { src, .. } | Op::Assign { src, .. } => vec![src],
            Op::Advance { src, .. } | Op::Retreat { src, .. } => vec![src],
            Op::And { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::Add { a, b, .. }
            | Op::Xor { a, b, .. } => vec![a, b],
        }
    }

    /// Returns `true` for the shift instructions (`Advance`/`Retreat`),
    /// which are the source of cross-block dependencies.
    pub fn is_shift(&self) -> bool {
        matches!(self, Op::Advance { .. } | Op::Retreat { .. })
    }

    /// The signed shift distance: positive for [`Op::Advance`] (the paper's
    /// right shift, reaching *back* into earlier input), negative for
    /// [`Op::Retreat`]; zero for everything else.
    pub fn signed_shift(&self) -> i64 {
        match *self {
            Op::Advance { amount, .. } => amount as i64,
            Op::Retreat { amount, .. } => -(amount as i64),
            _ => 0,
        }
    }
}

/// A statement: an instruction or a control-flow construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A bitstream instruction.
    Op(Op),
    /// `if (cond) { body }`: executed when `cond` has any set bit.
    ///
    /// Bodies must be safe to skip when `cond` is all-zero (the paper's
    /// predication discipline); the zero-block-skipping pass enforces this
    /// when it inserts guards.
    If {
        /// Condition variable (true iff any bit is set).
        cond: StreamId,
        /// Statements executed when the condition holds.
        body: Vec<Stmt>,
    },
    /// `while (cond) { body }`: repeats while `cond` has any set bit.
    While {
        /// Condition variable, re-evaluated each trip.
        cond: StreamId,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A bitstream program: the unit the paper compiles into one GPU device
/// function and assigns to one CTA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    stmts: Vec<Stmt>,
    num_streams: u32,
    outputs: Vec<StreamId>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// `num_streams` must exceed every variable id used; `outputs` are the
    /// match-end streams, one per regex in the group.
    pub fn new(stmts: Vec<Stmt>, num_streams: u32, outputs: Vec<StreamId>) -> Program {
        Program { stmts, num_streams, outputs }
    }

    /// The top-level statement list.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Mutable access for transformation passes.
    pub fn stmts_mut(&mut self) -> &mut Vec<Stmt> {
        &mut self.stmts
    }

    /// Number of distinct stream variables.
    pub fn num_streams(&self) -> u32 {
        self.num_streams
    }

    /// Bumps the variable count, returning a fresh id (used by passes that
    /// introduce temporaries).
    pub fn fresh_stream(&mut self) -> StreamId {
        let id = StreamId(self.num_streams);
        self.num_streams += 1;
        id
    }

    /// The match-end output streams, one per regex in the group.
    pub fn outputs(&self) -> &[StreamId] {
        &self.outputs
    }

    /// Streams required for the interleaved executor's result store.
    pub fn outputs_mut(&mut self) -> &mut Vec<StreamId> {
        &mut self.outputs
    }

    /// The length every stream takes for an input of `input_len` bytes.
    ///
    /// One extra position is kept so a cursor that consumed the final byte
    /// (a match ending at the last position) is representable.
    pub fn stream_len(input_len: usize) -> usize {
        input_len + 1
    }

    /// Visits every [`Op`] in the program, outermost first, entering
    /// `if`/`while` bodies.
    pub fn for_each_op<F: FnMut(&Op)>(&self, f: &mut F) {
        fn walk<F: FnMut(&Op)>(stmts: &[Stmt], f: &mut F) {
            for s in stmts {
                match s {
                    Stmt::Op(op) => f(op),
                    Stmt::If { body, .. } | Stmt::While { body, .. } => walk(body, f),
                }
            }
        }
        walk(&self.stmts, f);
    }

    /// Total number of instructions (not counting control-flow headers).
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.for_each_op(&mut |_| n += 1);
        n
    }

    /// Number of `while` statements anywhere in the program.
    pub fn while_count(&self) -> usize {
        fn walk(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Op(_) => 0,
                    Stmt::If { body, .. } => walk(body),
                    Stmt::While { body, .. } => 1 + walk(body),
                })
                .sum()
        }
        walk(&self.stmts)
    }

    /// Replaces the program's outputs with a single stream holding their
    /// union, appending the OR instructions that compute it.
    ///
    /// Engines that only report *whether any* pattern matched at a
    /// position (the multi-pattern union) use this to store one stream per
    /// window instead of one per regex.
    pub fn combine_outputs(&mut self) {
        if self.outputs.len() <= 1 {
            return;
        }
        let outputs = std::mem::take(&mut self.outputs);
        let mut acc = outputs[0];
        for &next in &outputs[1..] {
            let dst = self.fresh_stream();
            self.stmts.push(Stmt::Op(Op::Or { dst, a: acc, b: next }));
            acc = dst;
        }
        self.outputs = vec![acc];
    }

    /// All distinct character classes matched by the program, in first-use
    /// order.
    pub fn classes(&self) -> Vec<ByteSet> {
        let mut seen = Vec::new();
        self.for_each_op(&mut |op| {
            if let Op::MatchCc { class, .. } = op {
                if !seen.contains(class) {
                    seen.push(*class);
                }
            }
        });
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StreamId {
        StreamId(i)
    }

    #[test]
    fn op_dst_and_sources() {
        let op = Op::And { dst: s(2), a: s(0), b: s(1) };
        assert_eq!(op.dst(), s(2));
        assert_eq!(op.sources(), vec![s(0), s(1)]);
        let sh = Op::Advance { dst: s(3), src: s(2), amount: 4 };
        assert!(sh.is_shift());
        assert_eq!(sh.signed_shift(), 4);
        let re = Op::Retreat { dst: s(4), src: s(3), amount: 2 };
        assert_eq!(re.signed_shift(), -2);
        assert_eq!(Op::Zero { dst: s(5) }.sources(), vec![]);
        assert!(!Op::Assign { dst: s(1), src: s(0) }.is_shift());
    }

    #[test]
    fn program_walk_and_counts() {
        let prog = Program::new(
            vec![
                Stmt::Op(Op::MatchCc { dst: s(0), class: ByteSet::singleton(b'a') }),
                Stmt::While {
                    cond: s(0),
                    body: vec![
                        Stmt::Op(Op::Advance { dst: s(1), src: s(0), amount: 1 }),
                        Stmt::If {
                            cond: s(1),
                            body: vec![Stmt::Op(Op::And { dst: s(2), a: s(0), b: s(1) })],
                        },
                    ],
                },
            ],
            3,
            vec![s(2)],
        );
        assert_eq!(prog.op_count(), 3);
        assert_eq!(prog.while_count(), 1);
        assert_eq!(prog.classes(), vec![ByteSet::singleton(b'a')]);
        assert_eq!(prog.outputs(), &[s(2)]);
    }

    #[test]
    fn combine_outputs_unions() {
        let mut prog = Program::new(
            vec![
                Stmt::Op(Op::Zero { dst: s(0) }),
                Stmt::Op(Op::Zero { dst: s(1) }),
                Stmt::Op(Op::Zero { dst: s(2) }),
            ],
            3,
            vec![s(0), s(1), s(2)],
        );
        prog.combine_outputs();
        assert_eq!(prog.outputs().len(), 1);
        // Two OR instructions appended.
        assert_eq!(prog.op_count(), 5);
        // Idempotent on single-output programs.
        let before = prog.clone();
        prog.combine_outputs();
        assert_eq!(prog, before);
    }

    #[test]
    fn fresh_stream_increments() {
        let mut prog = Program::new(vec![], 5, vec![]);
        assert_eq!(prog.fresh_stream(), s(5));
        assert_eq!(prog.fresh_stream(), s(6));
        assert_eq!(prog.num_streams(), 7);
    }

    #[test]
    fn stream_len_has_sentinel() {
        assert_eq!(Program::stream_len(6), 7);
        assert_eq!(Program::stream_len(0), 1);
    }

    #[test]
    fn display_stream_id() {
        assert_eq!(s(12).to_string(), "S12");
    }
}

//! Program well-formedness verification.
//!
//! Transformation passes (rebalancing, zero-block skipping, output
//! combining) rewrite programs structurally; [`verify`] checks the
//! invariants every executor relies on, so a buggy pass fails loudly in
//! tests instead of producing wrong matches:
//!
//! - every variable id is within `num_streams`;
//! - every use (operand, condition, output) is preceded by a definition
//!   on the straight-line path to it (loop bodies are checked for their
//!   first trip, which is the strongest form our lowering guarantees);
//! - shift amounts are non-zero.

use crate::program::{Op, Program, Stmt, StreamId};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A variable id at or beyond `num_streams`.
    IdOutOfRange {
        /// The offending id.
        id: StreamId,
        /// The program's stream count.
        num_streams: u32,
    },
    /// A read of a variable with no preceding definition.
    UseBeforeDef {
        /// The offending id.
        id: StreamId,
        /// Rendering of the instruction or construct reading it.
        context: String,
    },
    /// A shift instruction with amount zero.
    ZeroShift {
        /// Destination of the offending shift.
        dst: StreamId,
    },
    /// A program output that is never defined.
    UndefinedOutput {
        /// The output id.
        id: StreamId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IdOutOfRange { id, num_streams } => {
                write!(f, "{id} out of range (program has {num_streams} streams)")
            }
            VerifyError::UseBeforeDef { id, context } => {
                write!(f, "{id} read before any definition in {context}")
            }
            VerifyError::ZeroShift { dst } => write!(f, "zero-distance shift into {dst}"),
            VerifyError::UndefinedOutput { id } => {
                write!(f, "output {id} is never defined")
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifies `program`; see the module docs for the invariants.
///
/// # Errors
///
/// Returns the first violation found.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::{lower, verify};
///
/// verify(&lower(&parse("a(bc)*d").unwrap())).expect("lowered programs verify");
/// ```
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    let mut defined: HashSet<StreamId> = HashSet::new();
    check_stmts(program.stmts(), &mut defined, program.num_streams())?;
    for &out in program.outputs() {
        check_id(out, program.num_streams())?;
        if !defined.contains(&out) {
            return Err(VerifyError::UndefinedOutput { id: out });
        }
    }
    Ok(())
}

fn check_id(id: StreamId, num_streams: u32) -> Result<(), VerifyError> {
    if id.0 >= num_streams {
        Err(VerifyError::IdOutOfRange { id, num_streams })
    } else {
        Ok(())
    }
}

fn check_stmts(
    stmts: &[Stmt],
    defined: &mut HashSet<StreamId>,
    num_streams: u32,
) -> Result<(), VerifyError> {
    for stmt in stmts {
        match stmt {
            Stmt::Op(op) => check_op(op, defined, num_streams)?,
            Stmt::If { cond, body } | Stmt::While { cond, body } => {
                check_id(*cond, num_streams)?;
                if !defined.contains(cond) {
                    return Err(VerifyError::UseBeforeDef {
                        id: *cond,
                        context: "control-flow condition".to_string(),
                    });
                }
                // First-trip discipline: body uses must resolve against
                // definitions before the construct or earlier in the body.
                check_stmts(body, defined, num_streams)?;
            }
        }
    }
    Ok(())
}

fn check_op(
    op: &Op,
    defined: &mut HashSet<StreamId>,
    num_streams: u32,
) -> Result<(), VerifyError> {
    for src in op.sources() {
        check_id(src, num_streams)?;
        if !defined.contains(&src) {
            return Err(VerifyError::UseBeforeDef { id: src, context: format!("{op:?}") });
        }
    }
    check_id(op.dst(), num_streams)?;
    match op {
        Op::Advance { amount: 0, dst, .. } | Op::Retreat { amount: 0, dst, .. } => {
            return Err(VerifyError::ZeroShift { dst: *dst });
        }
        _ => {}
    }
    defined.insert(op.dst());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::lower::{lower_group_with, LowerOptions};
    use bitgen_regex::parse;

    #[test]
    fn lowered_programs_verify() {
        for pat in ["ab", "a(bc)*d", "a{3,9}[x-z]+", "(a|bb)?c"] {
            for opts in [
                LowerOptions::default(),
                LowerOptions { match_star: true, log_repetition: true },
            ] {
                let prog = lower_group_with(&[parse(pat).unwrap()], opts);
                verify(&prog).unwrap_or_else(|e| panic!("{pat:?} {opts:?}: {e}"));
            }
        }
    }

    #[test]
    fn combined_outputs_verify() {
        let mut prog = lower_group_with(
            &[parse("ab").unwrap(), parse("cd").unwrap()],
            LowerOptions::default(),
        );
        prog.combine_outputs();
        verify(&prog).unwrap();
    }

    #[test]
    fn detects_use_before_def() {
        let mut b = ProgramBuilder::new();
        let x = b.fresh(); // never defined
        let y = b.not(x);
        b.mark_output(y);
        let err = verify(&b.finish()).unwrap_err();
        assert!(matches!(err, VerifyError::UseBeforeDef { .. }), "{err}");
    }

    #[test]
    fn detects_undefined_output() {
        let mut b = ProgramBuilder::new();
        let _def = b.ones();
        let ghost = b.fresh();
        b.mark_output(ghost);
        let err = verify(&b.finish()).unwrap_err();
        assert!(matches!(err, VerifyError::UndefinedOutput { .. }), "{err}");
    }

    #[test]
    fn detects_out_of_range_ids() {
        use crate::program::{Op, Program, Stmt};
        let prog = Program::new(
            vec![Stmt::Op(Op::Zero { dst: StreamId(7) })],
            3,
            vec![],
        );
        let err = verify(&prog).unwrap_err();
        assert!(matches!(err, VerifyError::IdOutOfRange { .. }), "{err}");
    }

    #[test]
    fn detects_zero_shift() {
        use crate::program::{Op, Program, Stmt};
        let prog = Program::new(
            vec![
                Stmt::Op(Op::Ones { dst: StreamId(0) }),
                Stmt::Op(Op::Advance { dst: StreamId(1), src: StreamId(0), amount: 0 }),
            ],
            2,
            vec![],
        );
        let err = verify(&prog).unwrap_err();
        assert!(matches!(err, VerifyError::ZeroShift { .. }), "{err}");
    }

    #[test]
    fn detects_undefined_condition() {
        use crate::program::{Op, Program, Stmt};
        let prog = Program::new(
            vec![Stmt::While {
                cond: StreamId(0),
                body: vec![Stmt::Op(Op::Zero { dst: StreamId(0) })],
            }],
            1,
            vec![],
        );
        let err = verify(&prog).unwrap_err();
        assert!(matches!(err, VerifyError::UseBeforeDef { .. }), "{err}");
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::UseBeforeDef { id: StreamId(5), context: "And".into() };
        assert!(e.to_string().contains("S5"));
    }
}

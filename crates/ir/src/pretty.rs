//! Pretty-printer producing Listing-3-style renderings of programs.

use crate::program::{Op, Program, Stmt};
use std::fmt::Write as _;

/// Renders a program in the paper's listing notation.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::{lower, pretty};
///
/// let prog = lower(&parse("ab").unwrap());
/// let text = pretty(&prog);
/// assert!(text.contains(">> 1"));
/// assert!(text.contains("match("));
/// ```
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# streams: {}, outputs: {}",
        program.num_streams(),
        program
            .outputs()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    write_stmts(program.stmts(), 0, &mut out);
    out
}

fn write_stmts(stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for stmt in stmts {
        match stmt {
            Stmt::Op(op) => {
                let _ = writeln!(out, "{pad}{}", render_op(op));
            }
            Stmt::If { cond, body } => {
                let _ = writeln!(out, "{pad}if ({cond}):");
                write_stmts(body, indent + 1, out);
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while ({cond}):");
                write_stmts(body, indent + 1, out);
            }
        }
    }
}

fn render_op(op: &Op) -> String {
    match op {
        Op::MatchCc { dst, class } => format!("{dst} = match(text, {class})"),
        Op::And { dst, a, b } => format!("{dst} = {a} & {b}"),
        Op::Or { dst, a, b } => format!("{dst} = {a} | {b}"),
        Op::Add { dst, a, b } => format!("{dst} = {a} + {b}"),
        Op::Xor { dst, a, b } => format!("{dst} = {a} ^ {b}"),
        Op::Not { dst, src } => format!("{dst} = ~{src}"),
        Op::Advance { dst, src, amount } => format!("{dst} = {src} >> {amount}"),
        Op::Retreat { dst, src, amount } => format!("{dst} = {src} << {amount}"),
        Op::Assign { dst, src } => format!("{dst} = {src}"),
        Op::Zero { dst } => format!("{dst} = 0"),
        Op::Ones { dst } => format!("{dst} = ~0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use bitgen_regex::parse;

    #[test]
    fn star_prints_while() {
        let text = pretty(&lower(&parse("a(bc)*d").unwrap()));
        assert!(text.contains("while (S"), "got:\n{text}");
        assert!(text.lines().any(|l| l.starts_with("    ")), "body is indented:\n{text}");
    }

    #[test]
    fn header_lists_outputs() {
        let text = pretty(&lower(&parse("ab").unwrap()));
        assert!(text.starts_with("# streams:"));
        assert!(text.contains("outputs: S"));
    }

    #[test]
    fn all_op_forms_render() {
        use crate::program::{Op, StreamId};
        let s = StreamId(0);
        let d = StreamId(1);
        for (op, needle) in [
            (Op::Xor { dst: d, a: s, b: s }, "^"),
            (Op::Retreat { dst: d, src: s, amount: 2 }, "<< 2"),
            (Op::Zero { dst: d }, "= 0"),
            (Op::Ones { dst: d }, "= ~0"),
            (Op::Assign { dst: d, src: s }, "S1 = S0"),
        ] {
            assert!(render_op(&op).contains(needle), "{op:?}");
        }
    }
}

//! Incremental construction of bitstream programs.
//!
//! [`ProgramBuilder`] hands out fresh stream variables, deduplicates
//! character-class matches, and manages the statement nesting of `if` and
//! `while` bodies via closures.

use crate::program::{Op, Program, Stmt, StreamId};
use bitgen_regex::ByteSet;
use std::collections::HashMap;

/// Builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use bitgen_ir::ProgramBuilder;
/// use bitgen_regex::ByteSet;
///
/// let mut b = ProgramBuilder::new();
/// let a = b.match_cc(ByteSet::singleton(b'a'));
/// let adv = b.advance(a, 1);
/// let bb = b.match_cc(ByteSet::singleton(b'b'));
/// let m = b.and(adv, bb);
/// b.mark_output(m);
/// let prog = b.finish();
/// assert_eq!(prog.op_count(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    next: u32,
    frames: Vec<Vec<Stmt>>,
    cc_cache: HashMap<ByteSet, StreamId>,
    outputs: Vec<StreamId>,
    ops: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            next: 0,
            frames: vec![Vec::new()],
            cc_cache: HashMap::new(),
            outputs: Vec::new(),
            ops: 0,
        }
    }

    /// Instructions emitted so far — what compile budgets meter.
    pub fn ops_emitted(&self) -> usize {
        self.ops
    }

    /// Allocates a fresh stream variable.
    pub fn fresh(&mut self) -> StreamId {
        let id = StreamId(self.next);
        self.next += 1;
        id
    }

    fn emit(&mut self, op: Op) {
        self.ops += 1;
        self.frames.last_mut().expect("frame stack never empty").push(Stmt::Op(op));
    }

    /// Emits `dst = match(class)`, reusing an earlier match of the same
    /// class if one exists.
    pub fn match_cc(&mut self, class: ByteSet) -> StreamId {
        if let Some(&id) = self.cc_cache.get(&class) {
            return id;
        }
        let dst = self.fresh();
        self.emit(Op::MatchCc { dst, class });
        self.cc_cache.insert(class, dst);
        dst
    }

    /// Emits `dst = a & b` into a fresh variable.
    pub fn and(&mut self, a: StreamId, b: StreamId) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::And { dst, a, b });
        dst
    }

    /// Emits `dst = a | b` into a fresh variable.
    pub fn or(&mut self, a: StreamId, b: StreamId) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Or { dst, a, b });
        dst
    }

    /// Emits `dst = a + b` (long-stream addition) into a fresh variable.
    pub fn add(&mut self, a: StreamId, b: StreamId) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Add { dst, a, b });
        dst
    }

    /// Emits `dst = a ^ b` into a fresh variable.
    pub fn xor(&mut self, a: StreamId, b: StreamId) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Xor { dst, a, b });
        dst
    }

    /// Emits `dst = ~src` into a fresh variable.
    pub fn not(&mut self, src: StreamId) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Not { dst, src });
        dst
    }

    /// Emits `dst = src >> amount` (marker advance) into a fresh variable.
    ///
    /// # Panics
    ///
    /// Panics if `amount == 0` (use [`ProgramBuilder::assign_new`]).
    pub fn advance(&mut self, src: StreamId, amount: u32) -> StreamId {
        assert!(amount > 0, "zero-distance shift; use a copy instead");
        let dst = self.fresh();
        self.emit(Op::Advance { dst, src, amount });
        dst
    }

    /// Emits `dst = src << amount` (marker retreat) into a fresh variable.
    ///
    /// # Panics
    ///
    /// Panics if `amount == 0`.
    pub fn retreat(&mut self, src: StreamId, amount: u32) -> StreamId {
        assert!(amount > 0, "zero-distance shift; use a copy instead");
        let dst = self.fresh();
        self.emit(Op::Retreat { dst, src, amount });
        dst
    }

    /// Emits a copy of `src` into a fresh variable (used to seed
    /// loop-carried accumulators).
    pub fn assign_new(&mut self, src: StreamId) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Assign { dst, src });
        dst
    }

    /// Emits `dst = src` into an existing variable (loop-carried update).
    pub fn assign_to(&mut self, dst: StreamId, src: StreamId) {
        self.emit(Op::Assign { dst, src });
    }

    /// Emits `dst = a & b` into an existing variable.
    pub fn and_into(&mut self, dst: StreamId, a: StreamId, b: StreamId) {
        self.emit(Op::And { dst, a, b });
    }

    /// Emits `dst = dst | src` (in-place accumulate).
    pub fn or_into(&mut self, dst: StreamId, src: StreamId) {
        self.emit(Op::Or { dst, a: dst, b: src });
    }

    /// Emits `dst = 0` into a fresh variable.
    pub fn zero(&mut self) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Zero { dst });
        dst
    }

    /// Emits `dst = 1...1` into a fresh variable.
    pub fn ones(&mut self) -> StreamId {
        let dst = self.fresh();
        self.emit(Op::Ones { dst });
        dst
    }

    /// Emits `while (cond) { ... }`, building the body inside the closure.
    pub fn while_loop<F: FnOnce(&mut ProgramBuilder)>(&mut self, cond: StreamId, f: F) {
        self.frames.push(Vec::new());
        f(self);
        let body = self.frames.pop().expect("matching frame");
        self.frames
            .last_mut()
            .expect("frame stack never empty")
            .push(Stmt::While { cond, body });
    }

    /// Emits `if (cond) { ... }`, building the body inside the closure.
    pub fn if_block<F: FnOnce(&mut ProgramBuilder)>(&mut self, cond: StreamId, f: F) {
        self.frames.push(Vec::new());
        f(self);
        let body = self.frames.pop().expect("matching frame");
        self.frames
            .last_mut()
            .expect("frame stack never empty")
            .push(Stmt::If { cond, body });
    }

    /// Registers a stream as a match-end output of the program.
    pub fn mark_output(&mut self, id: StreamId) {
        self.outputs.push(id);
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if called while an `if`/`while` body is still open (cannot
    /// happen through the closure API).
    pub fn finish(mut self) -> Program {
        assert_eq!(self.frames.len(), 1, "unclosed control-flow body");
        let stmts = self.frames.pop().expect("top frame");
        Program::new(stmts, self.next, self.outputs)
    }
}

impl Default for ProgramBuilder {
    fn default() -> ProgramBuilder {
        ProgramBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_cache_dedups() {
        let mut b = ProgramBuilder::new();
        let a1 = b.match_cc(ByteSet::singleton(b'a'));
        let a2 = b.match_cc(ByteSet::singleton(b'a'));
        let c = b.match_cc(ByteSet::singleton(b'c'));
        assert_eq!(a1, a2);
        assert_ne!(a1, c);
        assert_eq!(b.finish().op_count(), 2);
    }

    #[test]
    fn nested_bodies() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        b.while_loop(x, |b| {
            let y = b.advance(x, 1);
            b.if_block(y, |b| {
                b.assign_to(x, y);
            });
        });
        let prog = b.finish();
        assert_eq!(prog.while_count(), 1);
        assert_eq!(prog.op_count(), 3);
        match &prog.stmts()[1] {
            Stmt::While { body, .. } => match &body[1] {
                Stmt::If { body, .. } => assert_eq!(body.len(), 1),
                other => panic!("expected If, got {other:?}"),
            },
            other => panic!("expected While, got {other:?}"),
        }
    }

    #[test]
    fn in_place_ops() {
        let mut b = ProgramBuilder::new();
        let acc = b.zero();
        let v = b.ones();
        b.or_into(acc, v);
        let prog = b.finish();
        match &prog.stmts()[2] {
            Stmt::Op(Op::Or { dst, a, .. }) => {
                assert_eq!(dst, a);
                assert_eq!(*dst, acc);
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "zero-distance")]
    fn zero_shift_rejected() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        b.advance(x, 0);
    }

    #[test]
    fn outputs_recorded() {
        let mut b = ProgramBuilder::new();
        let x = b.ones();
        let y = b.zero();
        b.mark_output(x);
        b.mark_output(y);
        assert_eq!(b.finish().outputs(), &[StreamId(0), StreamId(1)]);
    }
}

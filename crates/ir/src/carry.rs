//! Cross-chunk carry state for streaming execution.
//!
//! Batch execution sees the whole input at once, so every `Advance` can
//! read arbitrarily far back and every `while` runs to a global fixpoint.
//! Streaming hands the executor one chunk at a time; the only state that
//! must survive between chunks is, per shift-like instruction, the bits
//! that cross the chunk boundary — the same cross-block dependency the
//! paper's windows resolve, lifted to the host-streaming layer.
//!
//! A [`CarryState`] holds one slot per carry-bearing instruction:
//!
//! - `Advance(src, k)` keeps the last `k` bits of `src`'s history (the
//!   bits a shift would pull in from before the current window);
//! - `Add(a, b)` keeps a single bit: the carry of the long addition into
//!   the window boundary.
//!
//! `Retreat` gets **no** slot: lowering only ever emits `retreat(_, 1)`
//! at top level to normalise cursor streams into match-end outputs, and
//! the one-past-the-chunk "peek" position every window carries (see
//! `Program::stream_len`) makes that read exact — [`CarryState::for_program`]
//! enforces the structural invariant.
//!
//! Executors walk a program's carry-bearing ops in pre-order, mirroring
//! the slot layout built here; while-loop bodies rewind to their first
//! slot on every trip, and slots written inside a loop accumulate their
//! carry-out across trips by OR (sound because the loop computes a
//! monotone reachability closure — see DESIGN.md §10).

use crate::program::{Op, Program, Stmt};
use bitgen_bitstream::BitStream;
use std::fmt;
use std::ops::Range;

/// Why a [`CarryState`] failed integrity validation or deserialization.
///
/// Returned by [`CarryState::validate`] and [`CarryState::read_bytes`];
/// every variant means the state must not be executed — running a
/// corrupted carry would silently poison all downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CarryError {
    /// The slot count differs from the program's carry layout.
    SlotCountMismatch {
        /// Slots the program's layout requires.
        expected: usize,
        /// Slots the state actually holds.
        found: usize,
    },
    /// One slot's width differs from the instruction it belongs to.
    SlotWidthMismatch {
        /// Pre-order index of the offending slot.
        slot: usize,
        /// Width the instruction requires.
        expected: usize,
        /// Width the slot actually has.
        found: usize,
    },
    /// The recorded checksum does not cover the incoming carry bits —
    /// the state was corrupted after its last rotate.
    ChecksumMismatch {
        /// Checksum the state carries.
        expected: u64,
        /// Checksum recomputed over the current bits.
        found: u64,
    },
    /// An outgoing buffer holds bits at a window boundary; the
    /// post-window rotate must have zeroed it, so something scribbled on
    /// the state between pushes.
    DirtyOutgoing {
        /// Pre-order index of the offending slot.
        slot: usize,
    },
    /// Serialized bytes were truncated or structurally malformed.
    Malformed {
        /// What the parser tripped over.
        reason: &'static str,
    },
}

impl fmt::Display for CarryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarryError::SlotCountMismatch { expected, found } => {
                write!(f, "carry slot count mismatch: program needs {expected}, state has {found}")
            }
            CarryError::SlotWidthMismatch { slot, expected, found } => {
                write!(f, "carry slot {slot} width mismatch: needs {expected} bits, has {found}")
            }
            CarryError::ChecksumMismatch { expected, found } => write!(
                f,
                "carry checksum mismatch: recorded {expected:#018x}, recomputed {found:#018x}"
            ),
            CarryError::DirtyOutgoing { slot } => {
                write!(f, "carry slot {slot} has a dirty outgoing buffer at a window boundary")
            }
            CarryError::Malformed { reason } => write!(f, "malformed carry bytes: {reason}"),
        }
    }
}

impl std::error::Error for CarryError {}

/// Per-instruction carry slots threaded between consecutive chunks.
///
/// The state is double-buffered: during a window the executor *reads*
/// each slot's incoming carry (produced by the previous window) and
/// *accumulates* its outgoing carry; [`CarryState::rotate`] flips the
/// buffers once the window completes. A freshly built state has all
/// slots zero, which is exactly the before-start-of-stream semantics of
/// batch execution (shifts pull in zeros, additions start carry-less).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarryState {
    slots: Vec<Slot>,
    /// Checksum over the incoming carries, refreshed by [`CarryState::rotate`].
    ///
    /// During a window only the outgoing buffers mutate, so the seal
    /// stays valid from one rotate to the next; [`CarryState::validate`]
    /// recomputes it to detect corruption that happened *between*
    /// pushes (stray writes, bitrot in a deserialized checkpoint).
    seal: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    /// Carry entering the current window; read-only while executing.
    incoming: BitStream,
    /// Carry accumulated for the next window.
    outgoing: BitStream,
}

impl Slot {
    fn new(width: usize) -> Slot {
        Slot { incoming: BitStream::zeros(width), outgoing: BitStream::zeros(width) }
    }
}

impl CarryState {
    /// Builds a zeroed carry state with one slot per carry-bearing
    /// instruction of `program`, in pre-order.
    ///
    /// # Panics
    ///
    /// Panics if the program is not streamable: every `Retreat` must be
    /// the top-level `retreat(cursors, 1)` output normalisation that
    /// lowering emits (amount 1, destination is an output that is never
    /// read back). Transformed programs (shift rebalancing introduces
    /// non-causal retreats) must not be streamed — stream the untransformed
    /// lowering instead.
    pub fn for_program(program: &Program) -> CarryState {
        let mut reads = vec![false; program.num_streams() as usize];
        program.for_each_op(&mut |op| {
            for src in op.sources() {
                reads[src.index()] = true;
            }
        });
        let mut slots = Vec::new();
        build_slots(program.stmts(), true, &mut |op, top_level| match op {
            Op::Advance { amount, .. } => slots.push(Slot::new(*amount as usize)),
            Op::Add { .. } => slots.push(Slot::new(1)),
            Op::Retreat { dst, amount, .. } => {
                assert!(
                    top_level
                        && *amount == 1
                        && program.outputs().contains(dst)
                        && !reads[dst.index()],
                    "program is not streamable: Retreat is only supported as the \
                     top-level output normalisation `retreat(cursors, 1)`"
                );
            }
            _ => {}
        });
        let seal = seal_of(&slots);
        CarryState { slots, seal }
    }

    /// Number of carry slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Flips the buffers after a window: this window's carry-out becomes
    /// the next window's carry-in, and the outgoing side is zeroed.
    pub fn rotate(&mut self) {
        for s in &mut self.slots {
            std::mem::swap(&mut s.incoming, &mut s.outgoing);
            let w = s.outgoing.len();
            s.outgoing.reset_zeros(w);
        }
        self.seal = seal_of(&self.slots);
    }

    /// The integrity checksum recorded at the last rotate (or at
    /// construction / deserialization).
    pub fn seal(&self) -> u64 {
        self.seal
    }

    /// Checks this state against `program`'s carry layout and its own
    /// checksum: slot count, per-slot widths, zeroed outgoing buffers,
    /// and the incoming-carry seal must all hold.
    ///
    /// Valid only at a window boundary (right after construction,
    /// [`CarryState::rotate`], or [`CarryState::read_bytes`]) — mid-window
    /// the outgoing side is legitimately dirty.
    ///
    /// # Errors
    ///
    /// The first [`CarryError`] found, in slot order.
    pub fn validate(&self, program: &Program) -> Result<(), CarryError> {
        let expected = expected_widths(program);
        if expected.len() != self.slots.len() {
            return Err(CarryError::SlotCountMismatch {
                expected: expected.len(),
                found: self.slots.len(),
            });
        }
        for (slot, (s, &w)) in self.slots.iter().zip(&expected).enumerate() {
            if s.incoming.len() != w {
                return Err(CarryError::SlotWidthMismatch {
                    slot,
                    expected: w,
                    found: s.incoming.len(),
                });
            }
            if s.outgoing.len() != w {
                return Err(CarryError::SlotWidthMismatch {
                    slot,
                    expected: w,
                    found: s.outgoing.len(),
                });
            }
            if s.outgoing.any() {
                return Err(CarryError::DirtyOutgoing { slot });
            }
        }
        let found = seal_of(&self.slots);
        if found != self.seal {
            return Err(CarryError::ChecksumMismatch { expected: self.seal, found });
        }
        Ok(())
    }

    /// Serializes the state into `out`: slot count, each slot's incoming
    /// carry (width + words), then the seal. Only the incoming side is
    /// written — at a window boundary the outgoing buffers are zero by
    /// contract ([`CarryState::validate`] enforces it), so they carry no
    /// information.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend((self.slots.len() as u32).to_le_bytes());
        for s in &self.slots {
            out.extend((s.incoming.len() as u64).to_le_bytes());
            for &w in s.incoming.as_words() {
                out.extend(w.to_le_bytes());
            }
        }
        out.extend(self.seal.to_le_bytes());
    }

    /// Parses a state previously written by [`CarryState::write_bytes`],
    /// advancing `cursor` past the consumed bytes and re-verifying the
    /// seal over the parsed bits.
    ///
    /// The result is layout-agnostic; callers restoring a stream must
    /// still [`CarryState::validate`] it against the program it will run.
    ///
    /// # Errors
    ///
    /// [`CarryError::Malformed`] on truncated or implausible bytes,
    /// [`CarryError::ChecksumMismatch`] when the stored seal does not
    /// cover the stored bits.
    pub fn read_bytes(bytes: &[u8], cursor: &mut usize) -> Result<CarryState, CarryError> {
        let n = read_u32(bytes, cursor)? as usize;
        // Each slot record is at least its 8-byte width header, so the
        // bytes remaining past the cursor bound how many slots can
        // follow — a flipped count byte must not drive
        // `Vec::with_capacity` beyond what the payload could encode.
        if n > bytes.len().saturating_sub(*cursor) / 8 {
            return Err(CarryError::Malformed { reason: "slot count exceeds payload size" });
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let width = read_u64(bytes, cursor)? as usize;
            // A slot's words must actually follow it: `width` bits is
            // `width/64` words of 8 bytes each, so a width wider than
            // the remaining bytes can encode is corruption. Bounding it
            // keeps a flipped length byte from forcing a huge allocation.
            if width > bytes.len().saturating_sub(*cursor).saturating_mul(8) {
                return Err(CarryError::Malformed { reason: "carry slot implausibly wide" });
            }
            let words = (0..width.div_ceil(64))
                .map(|_| read_u64(bytes, cursor))
                .collect::<Result<Vec<u64>, CarryError>>()?;
            let incoming = BitStream::from_words(words, width);
            slots.push(Slot { outgoing: BitStream::zeros(width), incoming });
        }
        let seal = read_u64(bytes, cursor)?;
        let found = seal_of(&slots);
        if found != seal {
            return Err(CarryError::ChecksumMismatch { expected: seal, found });
        }
        Ok(CarryState { slots, seal })
    }

    /// Fault-drill hook: flips one seed-selected bit of one slot's
    /// *outgoing* buffer, simulating mid-window carry corruption (the
    /// streaming analogue of the CTA emulator's `CorruptTrips`). A no-op
    /// when the state has no slots. Detected by the cross-check replay's
    /// carry comparison; never call it outside fault drills.
    pub fn corrupt_outgoing(&mut self, seed: u64) {
        if self.slots.is_empty() {
            return;
        }
        let slot = seed as usize % self.slots.len();
        let s = &mut self.slots[slot];
        let width = s.outgoing.len();
        if width == 0 {
            return;
        }
        let bit = (seed >> 16) as usize % width;
        let cur = s.outgoing.get(bit);
        s.outgoing.set(bit, !cur);
    }

    /// A copy with the same incoming carries and zeroed outgoing side —
    /// lets a reference interpreter replay the window for cross-checking
    /// without disturbing the live state.
    pub fn fork(&self) -> CarryState {
        let mut f = self.clone();
        for s in &mut f.slots {
            let w = s.outgoing.len();
            s.outgoing.reset_zeros(w);
        }
        f
    }

    /// `true` if any incoming carry in `range` is pending. Guards use
    /// this to run a body whose condition is locally empty but which owes
    /// work to a marker that crossed the chunk boundary.
    pub fn pending(&self, range: Range<usize>) -> bool {
        self.slots[range].iter().any(|s| s.incoming.any())
    }

    /// Executes `Advance(src, k)` through slot `slot`: injects the
    /// incoming history into the vacated low positions and accumulates
    /// the outgoing history (the last `k` bits of the window, excluding
    /// the provisional peek position).
    ///
    /// # Panics
    ///
    /// Panics if the slot width disagrees with `k` (wrong slot walk) or
    /// the window is empty.
    pub fn advance_through(&mut self, slot: usize, src: &BitStream, k: usize) -> BitStream {
        let s = &mut self.slots[slot];
        debug_assert_eq!(s.incoming.len(), k, "carry slot width mismatch");
        let out = src.advance_with_carry(k, &s.incoming);
        let consumed = src.len().checked_sub(1).expect("window must hold the peek position");
        let tail = src.history_tail(&s.incoming, consumed);
        s.outgoing.or_assign(&tail);
        out
    }

    /// Executes `Add(a, b)` through slot `slot`: injects the incoming
    /// carry below bit 0 and accumulates the carry into the window
    /// boundary (the peek position) as carry-out.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn add_through(&mut self, slot: usize, a: &BitStream, b: &BitStream) -> BitStream {
        let s = &mut self.slots[slot];
        let boundary = a.len().checked_sub(1).expect("window must hold the peek position");
        let (sum, carry_out) = a.add_with_carry(b, s.incoming.get(0), boundary);
        if carry_out {
            s.outgoing.set(0, true);
        }
        sum
    }
}

/// Number of carry slots the statements would occupy — the executor's
/// counterpart to [`CarryState::for_program`]'s layout, used to skip or
/// rewind over `if`/`while` bodies.
pub fn carry_slot_count(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    build_slots(stmts, false, &mut |op, _| {
        if matches!(op, Op::Advance { .. } | Op::Add { .. }) {
            n += 1;
        }
    });
    n
}

/// FNV-1a over the incoming carries: slot count, then each slot's width
/// and words. Cheap (one multiply per byte over a few machine words) and
/// stable across processes, which checkpoint serialization relies on.
fn seal_of(slots: &[Slot]) -> u64 {
    let mut h = fnv_word(FNV_OFFSET, slots.len() as u64);
    for s in slots {
        h = fnv_word(h, s.incoming.len() as u64);
        for &w in s.incoming.as_words() {
            h = fnv_word(h, w);
        }
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_word(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Slot widths `program`'s carry layout requires, in pre-order — the
/// validation counterpart of [`CarryState::for_program`] (which also
/// asserts streamability; this never panics).
fn expected_widths(program: &Program) -> Vec<usize> {
    let mut widths = Vec::new();
    build_slots(program.stmts(), false, &mut |op, _| match op {
        Op::Advance { amount, .. } => widths.push(*amount as usize),
        Op::Add { .. } => widths.push(1),
        _ => {}
    });
    widths
}

fn read_u32(bytes: &[u8], cursor: &mut usize) -> Result<u32, CarryError> {
    let end = cursor
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or(CarryError::Malformed { reason: "truncated" })?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[*cursor..end]);
    *cursor = end;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, CarryError> {
    let end = cursor
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or(CarryError::Malformed { reason: "truncated" })?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*cursor..end]);
    *cursor = end;
    Ok(u64::from_le_bytes(buf))
}

fn build_slots(stmts: &[Stmt], top_level: bool, f: &mut impl FnMut(&Op, bool)) {
    for stmt in stmts {
        match stmt {
            Stmt::Op(op) => f(op, top_level),
            Stmt::If { body, .. } | Stmt::While { body, .. } => build_slots(body, false, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, lower_group_with, LowerOptions};
    use bitgen_regex::parse;

    #[test]
    fn slot_layout_counts_shifts_and_adds() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let state = CarryState::for_program(&prog);
        // Every Advance in the program gets a slot; the lone Retreat
        // (output normalisation) gets none.
        let mut advances = 0;
        prog.for_each_op(&mut |op| {
            if matches!(op, Op::Advance { .. } | Op::Add { .. }) {
                advances += 1;
            }
        });
        assert_eq!(state.slot_count(), advances);
        assert_eq!(carry_slot_count(prog.stmts()), advances);
    }

    #[test]
    fn match_star_programs_have_add_slots() {
        let asts = vec![parse("a*b").unwrap()];
        let opts = LowerOptions { match_star: true, ..LowerOptions::default() };
        let prog = lower_group_with(&asts, opts);
        let state = CarryState::for_program(&prog);
        assert!(state.slot_count() > 0);
    }

    #[test]
    fn rotate_moves_outgoing_to_incoming() {
        let prog = lower(&parse("ab").unwrap());
        let mut state = CarryState::for_program(&prog);
        assert!(state.slot_count() > 0);
        let window = BitStream::from_positions(5, &[3]);
        let out = state.advance_through(0, &window, 1);
        assert_eq!(out.positions(), vec![4]);
        // Bit 3 is the last consumed position (4 is the peek), so the
        // outgoing history for a 1-bit slot is the bit at position 3.
        assert!(!state.pending(0..1));
        state.rotate();
        assert!(state.pending(0..1));
        let next = state.advance_through(0, &BitStream::zeros(5), 1);
        assert_eq!(next.positions(), vec![0]);
    }

    #[test]
    fn fork_keeps_incoming_only() {
        let prog = lower(&parse("ab").unwrap());
        let mut state = CarryState::for_program(&prog);
        let window = BitStream::from_positions(5, &[3]);
        state.advance_through(0, &window, 1);
        state.rotate();
        state.advance_through(0, &window, 1);
        let fork = state.fork();
        assert!(fork.pending(0..1));
        let mut replay = fork.clone();
        replay.advance_through(0, &window, 1);
        assert_eq!(replay, state);
    }

    #[test]
    fn validate_accepts_fresh_and_rotated_states() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let mut state = CarryState::for_program(&prog);
        state.validate(&prog).unwrap();
        let window = BitStream::from_positions(6, &[2, 4]);
        state.advance_through(0, &window, 1);
        state.rotate();
        state.validate(&prog).unwrap();
    }

    #[test]
    fn validate_rejects_foreign_layouts() {
        let a = lower(&parse("a(bc)*d").unwrap());
        let b = lower(&parse("x").unwrap());
        let state = CarryState::for_program(&a);
        assert!(matches!(
            state.validate(&b),
            Err(CarryError::SlotCountMismatch { .. } | CarryError::SlotWidthMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_dirty_outgoing() {
        let prog = lower(&parse("ab").unwrap());
        let mut state = CarryState::for_program(&prog);
        state.corrupt_outgoing(0);
        assert!(matches!(state.validate(&prog), Err(CarryError::DirtyOutgoing { .. })));
    }

    #[test]
    fn bytes_round_trip_preserves_state_and_seal() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let mut state = CarryState::for_program(&prog);
        let window = BitStream::from_positions(9, &[1, 3, 7]);
        state.advance_through(0, &window, 1);
        state.rotate();
        let mut bytes = Vec::new();
        state.write_bytes(&mut bytes);
        let mut cursor = 0;
        let back = CarryState::read_bytes(&bytes, &mut cursor).unwrap();
        assert_eq!(cursor, bytes.len());
        assert_eq!(back, state);
        back.validate(&prog).unwrap();
    }

    #[test]
    fn tampered_bytes_are_rejected() {
        let prog = lower(&parse("a{2,}").unwrap());
        let mut state = CarryState::for_program(&prog);
        state.advance_through(0, &BitStream::from_positions(5, &[1]), 1);
        state.rotate();
        let mut bytes = Vec::new();
        state.write_bytes(&mut bytes);
        // Flip one bit in every byte position in turn: each parse must
        // fail with a typed error (never panic, never accept silently)
        // unless the flipped bit is semantically dead (a masked tail bit
        // of a partial word), in which case the parse may still succeed —
        // but must then decode to the identical state.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            let mut cursor = 0;
            if let Ok(parsed) = CarryState::read_bytes(&bad, &mut cursor) {
                assert_eq!(parsed, state, "byte {i} flip changed state but was accepted");
            }
        }
        // Truncations fail typed too.
        for cut in 0..bytes.len() {
            let mut cursor = 0;
            assert!(CarryState::read_bytes(&bytes[..cut], &mut cursor).is_err());
        }
    }

    #[test]
    fn corrupt_outgoing_diverges_from_clean_replay() {
        // The hook must actually corrupt something a fork-replay compare
        // can see — that is what the streaming CorruptTrips drill relies on.
        let prog = lower(&parse("ab").unwrap());
        let mut live = CarryState::for_program(&prog);
        let fork = live.fork();
        live.corrupt_outgoing(7);
        assert_ne!(live, fork);
    }

    #[test]
    #[should_panic(expected = "not streamable")]
    fn rejects_non_output_retreats() {
        use crate::program::{Op, Program, Stmt, StreamId};
        let prog = Program::new(
            vec![
                Stmt::Op(Op::Ones { dst: StreamId(0) }),
                Stmt::Op(Op::Retreat { dst: StreamId(1), src: StreamId(0), amount: 2 }),
            ],
            2,
            vec![StreamId(1)],
        );
        CarryState::for_program(&prog);
    }
}

//! Cross-chunk carry state for streaming execution.
//!
//! Batch execution sees the whole input at once, so every `Advance` can
//! read arbitrarily far back and every `while` runs to a global fixpoint.
//! Streaming hands the executor one chunk at a time; the only state that
//! must survive between chunks is, per shift-like instruction, the bits
//! that cross the chunk boundary — the same cross-block dependency the
//! paper's windows resolve, lifted to the host-streaming layer.
//!
//! A [`CarryState`] holds one slot per carry-bearing instruction:
//!
//! - `Advance(src, k)` keeps the last `k` bits of `src`'s history (the
//!   bits a shift would pull in from before the current window);
//! - `Add(a, b)` keeps a single bit: the carry of the long addition into
//!   the window boundary.
//!
//! `Retreat` gets **no** slot: lowering only ever emits `retreat(_, 1)`
//! at top level to normalise cursor streams into match-end outputs, and
//! the one-past-the-chunk "peek" position every window carries (see
//! `Program::stream_len`) makes that read exact — [`CarryState::for_program`]
//! enforces the structural invariant.
//!
//! Executors walk a program's carry-bearing ops in pre-order, mirroring
//! the slot layout built here; while-loop bodies rewind to their first
//! slot on every trip, and slots written inside a loop accumulate their
//! carry-out across trips by OR (sound because the loop computes a
//! monotone reachability closure — see DESIGN.md §10).

use crate::program::{Op, Program, Stmt};
use bitgen_bitstream::BitStream;
use std::ops::Range;

/// Per-instruction carry slots threaded between consecutive chunks.
///
/// The state is double-buffered: during a window the executor *reads*
/// each slot's incoming carry (produced by the previous window) and
/// *accumulates* its outgoing carry; [`CarryState::rotate`] flips the
/// buffers once the window completes. A freshly built state has all
/// slots zero, which is exactly the before-start-of-stream semantics of
/// batch execution (shifts pull in zeros, additions start carry-less).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarryState {
    slots: Vec<Slot>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    /// Carry entering the current window; read-only while executing.
    incoming: BitStream,
    /// Carry accumulated for the next window.
    outgoing: BitStream,
}

impl Slot {
    fn new(width: usize) -> Slot {
        Slot { incoming: BitStream::zeros(width), outgoing: BitStream::zeros(width) }
    }
}

impl CarryState {
    /// Builds a zeroed carry state with one slot per carry-bearing
    /// instruction of `program`, in pre-order.
    ///
    /// # Panics
    ///
    /// Panics if the program is not streamable: every `Retreat` must be
    /// the top-level `retreat(cursors, 1)` output normalisation that
    /// lowering emits (amount 1, destination is an output that is never
    /// read back). Transformed programs (shift rebalancing introduces
    /// non-causal retreats) must not be streamed — stream the untransformed
    /// lowering instead.
    pub fn for_program(program: &Program) -> CarryState {
        let mut reads = vec![false; program.num_streams() as usize];
        program.for_each_op(&mut |op| {
            for src in op.sources() {
                reads[src.index()] = true;
            }
        });
        let mut slots = Vec::new();
        build_slots(program.stmts(), true, &mut |op, top_level| match op {
            Op::Advance { amount, .. } => slots.push(Slot::new(*amount as usize)),
            Op::Add { .. } => slots.push(Slot::new(1)),
            Op::Retreat { dst, amount, .. } => {
                assert!(
                    top_level
                        && *amount == 1
                        && program.outputs().contains(dst)
                        && !reads[dst.index()],
                    "program is not streamable: Retreat is only supported as the \
                     top-level output normalisation `retreat(cursors, 1)`"
                );
            }
            _ => {}
        });
        CarryState { slots }
    }

    /// Number of carry slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Flips the buffers after a window: this window's carry-out becomes
    /// the next window's carry-in, and the outgoing side is zeroed.
    pub fn rotate(&mut self) {
        for s in &mut self.slots {
            std::mem::swap(&mut s.incoming, &mut s.outgoing);
            let w = s.outgoing.len();
            s.outgoing.reset_zeros(w);
        }
    }

    /// A copy with the same incoming carries and zeroed outgoing side —
    /// lets a reference interpreter replay the window for cross-checking
    /// without disturbing the live state.
    pub fn fork(&self) -> CarryState {
        let mut f = self.clone();
        for s in &mut f.slots {
            let w = s.outgoing.len();
            s.outgoing.reset_zeros(w);
        }
        f
    }

    /// `true` if any incoming carry in `range` is pending. Guards use
    /// this to run a body whose condition is locally empty but which owes
    /// work to a marker that crossed the chunk boundary.
    pub fn pending(&self, range: Range<usize>) -> bool {
        self.slots[range].iter().any(|s| s.incoming.any())
    }

    /// Executes `Advance(src, k)` through slot `slot`: injects the
    /// incoming history into the vacated low positions and accumulates
    /// the outgoing history (the last `k` bits of the window, excluding
    /// the provisional peek position).
    ///
    /// # Panics
    ///
    /// Panics if the slot width disagrees with `k` (wrong slot walk) or
    /// the window is empty.
    pub fn advance_through(&mut self, slot: usize, src: &BitStream, k: usize) -> BitStream {
        let s = &mut self.slots[slot];
        debug_assert_eq!(s.incoming.len(), k, "carry slot width mismatch");
        let out = src.advance_with_carry(k, &s.incoming);
        let consumed = src.len().checked_sub(1).expect("window must hold the peek position");
        s.outgoing = s.outgoing.or(&src.history_tail(&s.incoming, consumed));
        out
    }

    /// Executes `Add(a, b)` through slot `slot`: injects the incoming
    /// carry below bit 0 and accumulates the carry into the window
    /// boundary (the peek position) as carry-out.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn add_through(&mut self, slot: usize, a: &BitStream, b: &BitStream) -> BitStream {
        let s = &mut self.slots[slot];
        let boundary = a.len().checked_sub(1).expect("window must hold the peek position");
        let (sum, carry_out) = a.add_with_carry(b, s.incoming.get(0), boundary);
        if carry_out {
            s.outgoing.set(0, true);
        }
        sum
    }
}

/// Number of carry slots the statements would occupy — the executor's
/// counterpart to [`CarryState::for_program`]'s layout, used to skip or
/// rewind over `if`/`while` bodies.
pub fn carry_slot_count(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    build_slots(stmts, false, &mut |op, _| {
        if matches!(op, Op::Advance { .. } | Op::Add { .. }) {
            n += 1;
        }
    });
    n
}

fn build_slots(stmts: &[Stmt], top_level: bool, f: &mut impl FnMut(&Op, bool)) {
    for stmt in stmts {
        match stmt {
            Stmt::Op(op) => f(op, top_level),
            Stmt::If { body, .. } | Stmt::While { body, .. } => build_slots(body, false, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, lower_group_with, LowerOptions};
    use bitgen_regex::parse;

    #[test]
    fn slot_layout_counts_shifts_and_adds() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let state = CarryState::for_program(&prog);
        // Every Advance in the program gets a slot; the lone Retreat
        // (output normalisation) gets none.
        let mut advances = 0;
        prog.for_each_op(&mut |op| {
            if matches!(op, Op::Advance { .. } | Op::Add { .. }) {
                advances += 1;
            }
        });
        assert_eq!(state.slot_count(), advances);
        assert_eq!(carry_slot_count(prog.stmts()), advances);
    }

    #[test]
    fn match_star_programs_have_add_slots() {
        let asts = vec![parse("a*b").unwrap()];
        let opts = LowerOptions { match_star: true, ..LowerOptions::default() };
        let prog = lower_group_with(&asts, opts);
        let state = CarryState::for_program(&prog);
        assert!(state.slot_count() > 0);
    }

    #[test]
    fn rotate_moves_outgoing_to_incoming() {
        let prog = lower(&parse("ab").unwrap());
        let mut state = CarryState::for_program(&prog);
        assert!(state.slot_count() > 0);
        let window = BitStream::from_positions(5, &[3]);
        let out = state.advance_through(0, &window, 1);
        assert_eq!(out.positions(), vec![4]);
        // Bit 3 is the last consumed position (4 is the peek), so the
        // outgoing history for a 1-bit slot is the bit at position 3.
        assert!(!state.pending(0..1));
        state.rotate();
        assert!(state.pending(0..1));
        let next = state.advance_through(0, &BitStream::zeros(5), 1);
        assert_eq!(next.positions(), vec![0]);
    }

    #[test]
    fn fork_keeps_incoming_only() {
        let prog = lower(&parse("ab").unwrap());
        let mut state = CarryState::for_program(&prog);
        let window = BitStream::from_positions(5, &[3]);
        state.advance_through(0, &window, 1);
        state.rotate();
        state.advance_through(0, &window, 1);
        let fork = state.fork();
        assert!(fork.pending(0..1));
        let mut replay = fork.clone();
        replay.advance_through(0, &window, 1);
        assert_eq!(replay, state);
    }

    #[test]
    #[should_panic(expected = "not streamable")]
    fn rejects_non_output_retreats() {
        use crate::program::{Op, Program, Stmt, StreamId};
        let prog = Program::new(
            vec![
                Stmt::Op(Op::Ones { dst: StreamId(0) }),
                Stmt::Op(Op::Retreat { dst: StreamId(1), src: StreamId(0), amount: 2 }),
            ],
            2,
            vec![StreamId(1)],
        );
        CarryState::for_program(&prog);
    }
}

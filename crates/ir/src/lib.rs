//! Bitstream-program IR for BitGen.
//!
//! The middle of the pipeline: regexes (from [`bitgen_regex`]) are lowered
//! into bitstream programs (the paper's Listing 2 grammar), which the
//! passes crate transforms and the kernel crate compiles for the simulated
//! GPU. This crate provides:
//!
//! - [`Program`] / [`Stmt`] / [`Op`]: the IR itself;
//! - [`ProgramBuilder`]: incremental construction;
//! - [`lower`] / [`lower_group`]: the Fig. 2 lowering rules;
//! - [`interpret`]: the whole-stream reference interpreter (the semantics
//!   every execution scheme must reproduce);
//! - [`ProgramStats`]: Table 1 instruction counts;
//! - [`DefUse`]: def/use analysis for the passes;
//! - [`pretty`]: Listing-3-style printing.
//!
//! # Examples
//!
//! ```
//! use bitgen_regex::parse;
//! use bitgen_ir::{lower, interpret};
//! use bitgen_bitstream::Basis;
//!
//! let prog = lower(&parse("(abc)|d").unwrap());
//! let r = interpret(&prog, &Basis::transpose(b"abcdabce"));
//! assert_eq!(r.match_ends(0), vec![2, 3, 6]); // Figure 3 of the paper
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod builder;
mod carry;
mod control;
mod interp;
mod limits;
mod lower;
mod pretty;
mod program;
mod stats;
mod verify;

pub use analysis::DefUse;
pub use builder::ProgramBuilder;
pub use carry::{carry_slot_count, CarryError, CarryState};
pub use control::{CancelToken, Interrupt, RunControl};
pub use interp::{interpret, try_interpret, try_interpret_chunk, InterpError, InterpResult};
pub use limits::{CompileLimits, LimitError};
pub use lower::{
    lower, lower_group, lower_group_checked, lower_group_with, strip_nullable, LowerOptions,
};
pub use pretty::pretty;
pub use program::{Op, Program, Stmt, StreamId};
pub use stats::ProgramStats;
pub use verify::{verify, VerifyError};

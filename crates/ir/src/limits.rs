//! Compile budgets bounding pathological patterns.
//!
//! Untrusted rule sets can encode enormous amounts of compile-time work in
//! a few bytes: nested counted repetitions multiply unrolled instructions,
//! and the nullable rewrite duplicates concat suffixes. [`CompileLimits`]
//! caps the three quantities that grow — AST nodes, distinct character
//! classes, and emitted IR instructions — and the checked lowering aborts
//! *before* performing over-budget work, so compile time stays proportional
//! to the limits rather than to the input.

use std::fmt;

/// Caps on the compile-time work one pattern group may demand.
///
/// Enforced by [`lower_group_checked`](crate::lower_group_checked); the
/// unchecked entry points behave as if every cap were infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileLimits {
    /// Maximum total AST nodes in the group, counted both as parsed and as
    /// rewritten by `strip_nullable` (which can grow the tree).
    pub max_ast_nodes: usize,
    /// Maximum distinct character classes in the group (each becomes a
    /// materialised stream held live across the whole program).
    pub max_classes: usize,
    /// Maximum IR instructions emitted when lowering the group.
    pub max_ir_ops: usize,
}

impl CompileLimits {
    /// No caps: every budget is `usize::MAX`.
    pub const fn unbounded() -> CompileLimits {
        CompileLimits {
            max_ast_nodes: usize::MAX,
            max_classes: usize::MAX,
            max_ir_ops: usize::MAX,
        }
    }

    /// Production defaults: two orders of magnitude above the paper's
    /// largest rule-set groups, far below anything that stalls a compile.
    pub const fn standard() -> CompileLimits {
        CompileLimits { max_ast_nodes: 100_000, max_classes: 4_096, max_ir_ops: 1_000_000 }
    }
}

impl Default for CompileLimits {
    fn default() -> CompileLimits {
        CompileLimits::standard()
    }
}

/// A compile budget was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitError {
    /// The group holds (or the nullable rewrite would create) more AST
    /// nodes than allowed. `nodes` is a lower bound when the rewrite
    /// aborted early.
    AstNodes {
        /// Observed node count when the budget tripped.
        nodes: usize,
        /// The configured cap.
        max: usize,
    },
    /// The group uses more distinct character classes than allowed.
    Classes {
        /// Distinct classes in the group.
        classes: usize,
        /// The configured cap.
        max: usize,
    },
    /// Lowering emitted more IR instructions than allowed.
    IrOps {
        /// Instructions emitted when the budget tripped.
        ops: usize,
        /// The configured cap.
        max: usize,
    },
}

impl fmt::Display for LimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitError::AstNodes { nodes, max } => {
                write!(f, "pattern group needs {nodes}+ AST nodes, limit is {max}")
            }
            LimitError::Classes { classes, max } => {
                write!(f, "pattern group uses {classes} character classes, limit is {max}")
            }
            LimitError::IrOps { ops, max } => {
                write!(f, "lowering emitted {ops}+ IR instructions, limit is {max}")
            }
        }
    }
}

impl std::error::Error for LimitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_budget() {
        let e = LimitError::AstNodes { nodes: 12, max: 10 };
        assert!(e.to_string().contains("AST nodes"));
        let e = LimitError::Classes { classes: 9, max: 4 };
        assert!(e.to_string().contains("character classes"));
        let e = LimitError::IrOps { ops: 101, max: 100 };
        assert!(e.to_string().contains("IR instructions"));
    }

    #[test]
    fn standard_is_default_and_below_unbounded() {
        assert_eq!(CompileLimits::default(), CompileLimits::standard());
        assert!(CompileLimits::standard().max_ir_ops < CompileLimits::unbounded().max_ir_ops);
    }
}

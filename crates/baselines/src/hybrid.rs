//! The Hyperscan-like hybrid CPU baseline.
//!
//! Hyperscan's core trick is decomposition: route pure literals to a
//! multi-string matcher, use a *required literal factor* as a prefilter
//! for composite patterns (running the NFA only around candidate sites),
//! and keep a full NFA only for patterns with no usable factor. This
//! engine reproduces that structure with the from-scratch Aho–Corasick
//! and Glushkov NFA of this crate, in single-threaded and multi-threaded
//! (sharded by regex) variants.

use crate::aho::AhoCorasick;
use crate::nfa::MultiNfa;
use bitgen_bitstream::BitStream;
use bitgen_regex::Ast;

/// How a regex is executed by the hybrid engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// The whole pattern is a literal byte string: Aho–Corasick only.
    Literal(Vec<u8>),
    /// A mandatory literal factor prefilters candidate sites; an NFA
    /// confirms around each.
    Prefilter {
        /// The required factor.
        factor: Vec<u8>,
        /// Maximum match bytes before the factor starts.
        max_before: usize,
        /// Maximum match bytes after the factor ends.
        max_after: usize,
    },
    /// No usable factor: full NFA scan.
    NfaOnly,
}

/// Chooses a plan for one regex (Hyperscan-style decomposition).
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_baselines::{plan_regex, Plan};
///
/// assert_eq!(plan_regex(&parse("attack").unwrap()), Plan::Literal(b"attack".to_vec()));
/// assert!(matches!(plan_regex(&parse("GET /[a-z]{1,8}index").unwrap()), Plan::Prefilter { .. }));
/// assert_eq!(plan_regex(&parse("(a|b)+").unwrap()), Plan::NfaOnly);
/// ```
pub fn plan_regex(ast: &Ast) -> Plan {
    if let Some(lit) = ast.as_literal() {
        if !lit.is_empty() {
            return Plan::Literal(lit);
        }
        return Plan::NfaOnly;
    }
    let Ast::Concat(parts) = ast else { return Plan::NfaOnly };
    // Find maximal runs of single-byte literal parts; a run is usable when
    // the rest of the pattern has bounded length on both sides.
    let lits: Vec<Option<u8>> = parts
        .iter()
        .map(|p| match p {
            Ast::Class(set) => set.as_singleton(),
            _ => None,
        })
        .collect();
    let max_lens: Vec<Option<usize>> = parts.iter().map(Ast::max_len).collect();
    let mut best: Option<(usize, Vec<u8>, usize, usize)> = None; // (len, bytes, before, after)
    let mut i = 0;
    while i < parts.len() {
        if lits[i].is_none() {
            i += 1;
            continue;
        }
        let start = i;
        let mut bytes = Vec::new();
        while i < parts.len() {
            match lits[i] {
                Some(b) => bytes.push(b),
                None => break,
            }
            i += 1;
        }
        if bytes.len() >= 2 {
            let before: Option<usize> =
                max_lens[..start].iter().try_fold(0usize, |a, m| Some(a + (*m)?));
            let after: Option<usize> =
                max_lens[i..].iter().try_fold(0usize, |a, m| Some(a + (*m)?));
            if let (Some(b), Some(a)) = (before, after) {
                if best.as_ref().is_none_or(|(l, ..)| bytes.len() > *l) {
                    best = Some((bytes.len(), bytes, b, a));
                }
            }
        }
    }
    match best {
        Some((_, factor, max_before, max_after)) => {
            Plan::Prefilter { factor, max_before, max_after }
        }
        None => Plan::NfaOnly,
    }
}

struct PrefilterGroup {
    nfa: MultiNfa,
    flen: usize,
    max_before: usize,
    max_after: usize,
}

/// Counts of how the regexes of an engine were routed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridBuildStats {
    /// Pure literals handled by Aho–Corasick alone.
    pub literal: usize,
    /// Factor-prefiltered patterns.
    pub prefiltered: usize,
    /// Full-NFA patterns.
    pub nfa_only: usize,
}

/// The single-threaded hybrid engine.
#[derive(Debug)]
pub struct HybridEngine {
    literal_ac: AhoCorasick,
    factor_ac: AhoCorasick,
    prefilter: Vec<PrefilterGroup>,
    nfa_only: Option<MultiNfa>,
    stats: HybridBuildStats,
}

impl std::fmt::Debug for PrefilterGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PrefilterGroup(flen={})", self.flen)
    }
}

impl HybridEngine {
    /// Builds the engine over a set of regexes.
    pub fn new(asts: &[Ast]) -> HybridEngine {
        let mut literals = Vec::new();
        let mut factors = Vec::new();
        let mut prefilter = Vec::new();
        let mut nfa_only_asts = Vec::new();
        let mut stats = HybridBuildStats::default();
        for ast in asts {
            match plan_regex(ast) {
                Plan::Literal(lit) => {
                    stats.literal += 1;
                    literals.push(lit);
                }
                Plan::Prefilter { factor, max_before, max_after } => {
                    stats.prefiltered += 1;
                    prefilter.push(PrefilterGroup {
                        nfa: MultiNfa::build(std::slice::from_ref(ast)),
                        flen: factor.len(),
                        max_before,
                        max_after,
                    });
                    factors.push(factor);
                }
                Plan::NfaOnly => {
                    stats.nfa_only += 1;
                    nfa_only_asts.push(ast.clone());
                }
            }
        }
        HybridEngine {
            literal_ac: AhoCorasick::new(&literals),
            factor_ac: AhoCorasick::new(&factors),
            prefilter,
            nfa_only: if nfa_only_asts.is_empty() {
                None
            } else {
                Some(MultiNfa::build(&nfa_only_asts))
            },
            stats,
        }
    }

    /// How the regexes were routed.
    pub fn build_stats(&self) -> HybridBuildStats {
        self.stats
    }

    /// Scans `input`, returning the union match-end stream.
    pub fn run(&self, input: &[u8]) -> BitStream {
        let mut ends = BitStream::zeros(input.len());
        // 1. Pure literals.
        self.literal_ac.scan(input, |m| ends.set(m.end, true));
        // 2. Prefiltered patterns: collect candidate windows per plan,
        //    coalesce, confirm with the per-pattern NFA.
        let mut windows: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.prefilter.len()];
        self.factor_ac.scan(input, |m| {
            let g = &self.prefilter[m.pattern as usize];
            let start = (m.end + 1).saturating_sub(g.flen + g.max_before);
            let end = (m.end + 1 + g.max_after).min(input.len());
            windows[m.pattern as usize].push((start, end));
        });
        for (g, wins) in self.prefilter.iter().zip(&mut windows) {
            coalesce(wins);
            for &(ws, we) in wins.iter() {
                let run = g.nfa.run(&input[ws..we]);
                for p in run.ends.positions() {
                    ends.set(ws + p, true);
                }
            }
        }
        // 3. Full NFA leftovers.
        if let Some(nfa) = &self.nfa_only {
            let run = nfa.run(input);
            ends = ends.or(&run.ends);
        }
        ends
    }
}

/// Merges overlapping/adjacent windows in place.
fn coalesce(windows: &mut Vec<(usize, usize)>) {
    windows.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(windows.len());
    for &(s, e) in windows.iter() {
        match out.last_mut() {
            Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
            _ => out.push((s, e)),
        }
    }
    *windows = out;
}

/// Multi-threaded hybrid engine: regexes are sharded across threads, each
/// shard scanning the full input (Hyperscan's HS-MT regime, with its
/// characteristic limited scalability).
#[derive(Debug)]
pub struct HybridMt {
    shards: Vec<HybridEngine>,
}

impl HybridMt {
    /// Builds `shards` engines over a size-balanced partition of `asts`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(asts: &[Ast], shards: usize) -> HybridMt {
        assert!(shards > 0, "at least one shard");
        let shards = shards.min(asts.len().max(1));
        // Greedy balance by character length.
        let mut order: Vec<usize> = (0..asts.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(asts[i].class_count()));
        let mut buckets: Vec<(usize, Vec<Ast>)> = vec![(0, Vec::new()); shards];
        for i in order {
            let b = buckets
                .iter_mut()
                .min_by_key(|(load, _)| *load)
                .expect("at least one bucket");
            b.0 += asts[i].class_count().max(1);
            b.1.push(asts[i].clone());
        }
        HybridMt { shards: buckets.into_iter().map(|(_, a)| HybridEngine::new(&a)).collect() }
    }

    /// Number of shards (threads used by [`HybridMt::run`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Scans `input` with one thread per shard.
    pub fn run(&self, input: &[u8]) -> BitStream {
        let results: Vec<BitStream> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                self.shards.iter().map(|e| scope.spawn(move || e.run(input))).collect();
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
        });
        let mut ends = BitStream::zeros(input.len());
        for r in results {
            ends = ends.or(&r);
        }
        ends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::{multi_match_ends, parse};

    fn engine(pats: &[&str]) -> (HybridEngine, Vec<Ast>) {
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        (HybridEngine::new(&asts), asts)
    }

    fn assert_agrees(pats: &[&str], input: &[u8]) {
        let (eng, asts) = engine(pats);
        let expect = multi_match_ends(&asts, input);
        assert_eq!(eng.run(input).positions(), expect, "{pats:?}");
    }

    #[test]
    fn plans() {
        assert_eq!(plan_regex(&parse("evil").unwrap()), Plan::Literal(b"evil".to_vec()));
        match plan_regex(&parse("ab[0-9]{1,3}cdef").unwrap()) {
            Plan::Prefilter { factor, max_before, max_after } => {
                assert_eq!(factor, b"cdef");
                assert_eq!(max_before, 5);
                assert_eq!(max_after, 0);
            }
            other => panic!("expected prefilter, got {other:?}"),
        }
        assert_eq!(plan_regex(&parse("(ab)*").unwrap()), Plan::NfaOnly);
        // Unbounded tail after the factor forces NFA-only... unless a
        // bounded factor run exists elsewhere.
        assert_eq!(plan_regex(&parse("ab.*").unwrap()), Plan::NfaOnly);
    }

    #[test]
    fn literal_only_matching() {
        assert_agrees(&["cat", "dog"], b"catdogcat");
    }

    #[test]
    fn prefiltered_matching() {
        assert_agrees(&["[0-9]{1,2}abc"], b"7abc 42abc xabc0");
        assert_agrees(&["abc[x-z]?"], b"abcz abc abcy");
    }

    #[test]
    fn nfa_only_matching() {
        assert_agrees(&["(ab|ba)+"], b"abbaab");
        assert_agrees(&["a+"], b"aaa b aa");
    }

    #[test]
    fn mixed_workload() {
        assert_agrees(
            &["attack", "GET[ ]/[a-z]{1,4}", "x(yz)*w", "[0-9]{2}cmd"],
            b"attack GET /ab 99cmd xyzyzw",
        );
    }

    #[test]
    fn matches_at_boundaries() {
        assert_agrees(&["[0-9]ab"], b"1ab");
        assert_agrees(&["ab[0-9]"], b"xxab7");
    }

    #[test]
    fn build_stats_route_correctly() {
        let (eng, _) = engine(&["lit", "x[0-9]{1,2}yz", "(a|b)+"]);
        let s = eng.build_stats();
        assert_eq!(s.literal, 1);
        assert_eq!(s.prefiltered, 1);
        assert_eq!(s.nfa_only, 1);
    }

    #[test]
    fn coalesce_windows() {
        let mut w = vec![(5, 10), (0, 3), (8, 12), (3, 4)];
        coalesce(&mut w);
        assert_eq!(w, vec![(0, 4), (5, 12)]);
    }

    #[test]
    fn mt_agrees_with_single_thread() {
        let pats = ["cat", "[0-9]{1,2}dog", "(ab)+c", "end"];
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        let input = b"cat 42dog ababc the end";
        let st = HybridEngine::new(&asts).run(input);
        for shards in [1, 2, 4] {
            let mt = HybridMt::new(&asts, shards);
            assert!(mt.shard_count() <= shards);
            assert_eq!(mt.run(input).positions(), st.positions(), "{shards} shards");
        }
    }
}

//! Aho–Corasick multi-string matching, built from scratch.
//!
//! The literal engine under the Hyperscan-like baseline: a goto trie with
//! BFS-built failure links and merged output sets, matched with all-match
//! semantics (every occurrence of every pattern reported).

/// A match of one pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcMatch {
    /// Index of the pattern (in insertion order).
    pub pattern: u32,
    /// Byte position at which the occurrence ends (inclusive).
    pub end: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    /// Sorted `(byte, node)` edges.
    children: Vec<(u8, u32)>,
    fail: u32,
    /// Patterns ending at this node (including via suffix links, merged
    /// during construction).
    outputs: Vec<u32>,
}

/// An Aho–Corasick automaton over a set of byte-string patterns.
///
/// # Examples
///
/// ```
/// use bitgen_baselines::AhoCorasick;
///
/// let ac = AhoCorasick::new(&[b"he".to_vec(), b"she".to_vec(), b"hers".to_vec()]);
/// let ends: Vec<usize> = ac.find_all(b"ushers").iter().map(|m| m.end).collect();
/// assert_eq!(ends, vec![3, 3, 5]);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_count: usize,
}

impl AhoCorasick {
    /// Builds the automaton. Empty patterns are ignored (they would match
    /// zero-width everywhere).
    pub fn new(patterns: &[Vec<u8>]) -> AhoCorasick {
        let mut nodes = vec![Node::default()];
        for (pi, pat) in patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in pat {
                cur = match child(&nodes[cur as usize], b) {
                    Some(next) => next,
                    None => {
                        nodes.push(Node::default());
                        let next = (nodes.len() - 1) as u32;
                        let node = &mut nodes[cur as usize];
                        let idx = node.children.partition_point(|&(cb, _)| cb < b);
                        node.children.insert(idx, (b, next));
                        next
                    }
                };
            }
            nodes[cur as usize].outputs.push(pi as u32);
        }
        // BFS failure links; merge output sets along them.
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for &(_, c) in &nodes[0].children.clone() {
            nodes[c as usize].fail = 0;
            queue.push_back(c);
        }
        while let Some(u) = queue.pop_front() {
            for (b, c) in nodes[u as usize].children.clone() {
                // Walk fail links of u to find the failure target of c.
                let mut f = nodes[u as usize].fail;
                let fail_target = loop {
                    if let Some(next) = child(&nodes[f as usize], b) {
                        break next;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                let fail_target = if fail_target == c { 0 } else { fail_target };
                nodes[c as usize].fail = fail_target;
                let inherited = nodes[fail_target as usize].outputs.clone();
                nodes[c as usize].outputs.extend(inherited);
                queue.push_back(c);
            }
        }
        AhoCorasick { nodes, pattern_count: patterns.len() }
    }

    /// Number of trie nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of patterns the automaton was built from.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Finds every occurrence of every pattern, in end-position order.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        self.scan(haystack, |m| out.push(m));
        out
    }

    /// Streams every occurrence to `on_match`, in end-position order.
    pub fn scan<F: FnMut(AcMatch)>(&self, haystack: &[u8], mut on_match: F) {
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            for &p in &self.nodes[state as usize].outputs {
                on_match(AcMatch { pattern: p, end: i });
            }
        }
    }

    fn step(&self, mut state: u32, b: u8) -> u32 {
        loop {
            if let Some(next) = child(&self.nodes[state as usize], b) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }
}

fn child(node: &Node, b: u8) -> Option<u32> {
    node.children
        .binary_search_by_key(&b, |&(cb, _)| cb)
        .ok()
        .map(|i| node.children[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(ps: &[&str]) -> Vec<Vec<u8>> {
        ps.iter().map(|p| p.as_bytes().to_vec()).collect()
    }

    #[test]
    fn classic_ushers() {
        let ac = AhoCorasick::new(&pats(&["he", "she", "his", "hers"]));
        let ms = ac.find_all(b"ushers");
        let got: Vec<(u32, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert_eq!(got, vec![(1, 3), (0, 3), (3, 5)]);
    }

    #[test]
    fn overlapping_occurrences() {
        let ac = AhoCorasick::new(&pats(&["aa"]));
        let ends: Vec<usize> = ac.find_all(b"aaaa").iter().map(|m| m.end).collect();
        assert_eq!(ends, vec![1, 2, 3]);
    }

    #[test]
    fn pattern_is_suffix_of_another() {
        let ac = AhoCorasick::new(&pats(&["abcd", "cd", "d"]));
        let ms = ac.find_all(b"abcd");
        let mut got: Vec<u32> = ms.iter().filter(|m| m.end == 3).map(|m| m.pattern).collect();
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn no_matches() {
        let ac = AhoCorasick::new(&pats(&["xyz"]));
        assert!(ac.find_all(b"abcabc").is_empty());
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[vec![0x00, 0xff], vec![0xff, 0xff]]);
        let ms = ac.find_all(&[0x00, 0xff, 0xff]);
        let got: Vec<(u32, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert_eq!(got, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_patterns_ignored() {
        let ac = AhoCorasick::new(&pats(&["", "a"]));
        let ms = ac.find_all(b"aa");
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.pattern == 1));
    }

    #[test]
    fn single_byte_patterns() {
        let ac = AhoCorasick::new(&pats(&["a", "b"]));
        let ends: Vec<(u32, usize)> =
            ac.find_all(b"ab").iter().map(|m| (m.pattern, m.end)).collect();
        assert_eq!(ends, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn node_count_reflects_sharing() {
        let ac = AhoCorasick::new(&pats(&["abc", "abd"]));
        // root + a + b + c + d = 5.
        assert_eq!(ac.node_count(), 5);
        assert_eq!(ac.pattern_count(), 2);
    }

    #[test]
    fn scan_matches_find_all() {
        let ac = AhoCorasick::new(&pats(&["ab", "bc"]));
        let mut streamed = Vec::new();
        ac.scan(b"abcabc", |m| streamed.push(m));
        assert_eq!(streamed, ac.find_all(b"abcabc"));
    }
}

//! Baseline engines the paper compares BitGen against, rebuilt from
//! scratch:
//!
//! - [`Glushkov`] / [`MultiNfa`]: position automata and their multi-regex
//!   one-byte-at-a-time simulation (the substrate shared by the automata
//!   baselines);
//! - [`run_gpu_nfa`]: the ngAP-style GPU NFA baseline — a *measured*
//!   NFA run priced by a latency/bandwidth model on the simulated device;
//! - [`AhoCorasick`]: multi-string matching;
//! - [`HybridEngine`] / [`HybridMt`]: the Hyperscan-like hybrid CPU
//!   engine — literal routing, factor prefiltering, NFA confirmation —
//!   single- and multi-threaded;
//! - [`CpuBitstreamEngine`]: the icgrep-like CPU bitstream interpreter;
//! - [`DfaEngine`]: an RE2-style lazy DFA with a capped state cache.
//!
//! Every engine here (and BitGen itself, in the `bitgen` crate) also
//! implements [`BenchTarget`], the one interface benchmark harnesses
//! time engines through.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aho;
mod cpu_bitstream;
mod dfa;
mod glushkov;
mod gpu_nfa;
mod hybrid;
mod nfa;
mod target;

pub use aho::{AcMatch, AhoCorasick};
pub use cpu_bitstream::CpuBitstreamEngine;
pub use dfa::{DfaEngine, DfaRun, DfaStats, DEFAULT_MAX_STATES};
pub use glushkov::{normalize, Glushkov, PosId};
pub use gpu_nfa::{run_gpu_nfa, GpuNfaModel, GpuNfaReport};
pub use hybrid::{plan_regex, HybridBuildStats, HybridEngine, HybridMt, Plan};
pub use nfa::{MultiNfa, NfaRun, NfaStats};
pub use target::{BenchTarget, GpuNfaTarget, TargetRun};

//! Glushkov NFA construction.
//!
//! The Glushkov (position) automaton has one state per character-class
//! occurrence plus a start state, and is ε-free — the construction
//! Hyperscan uses for its NFA engines and a natural fit for worklist-based
//! GPU execution (the ngAP-style baseline). Built with the classic
//! first/last/follow sets.

use bitgen_regex::{Ast, ByteSet};
use std::collections::BTreeSet;

/// A position (character-class occurrence) index; positions are numbered
/// from 0 in leaf order.
pub type PosId = u32;

/// A Glushkov automaton for one regex.
#[derive(Debug, Clone)]
pub struct Glushkov {
    /// Byte class of each position.
    pub classes: Vec<ByteSet>,
    /// Positions that can begin a match.
    pub first: Vec<PosId>,
    /// Positions that can end a match.
    pub last: Vec<bool>,
    /// `follow[p]`: positions that may come immediately after `p`.
    pub follow: Vec<Vec<PosId>>,
    /// Whether the regex accepts the empty string.
    pub nullable: bool,
}

impl Glushkov {
    /// Builds the automaton for `ast`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitgen_regex::parse;
    /// use bitgen_baselines::Glushkov;
    ///
    /// let g = Glushkov::build(&parse("a(bc)*d").unwrap());
    /// assert_eq!(g.state_count(), 4);
    /// assert_eq!(g.first, vec![0]);
    /// ```
    pub fn build(ast: &Ast) -> Glushkov {
        // Expand bounded repetitions first so position numbering (one per
        // leaf) and the first/last/follow analysis see the same tree.
        let ast = normalize(ast);
        let mut classes = Vec::new();
        number(&ast, &mut classes);
        let n = classes.len();
        let mut follow: Vec<BTreeSet<PosId>> = vec![BTreeSet::new(); n];
        let info = analyze(&ast, &mut Counter(0), &mut follow);
        let mut last = vec![false; n];
        for p in &info.last {
            last[*p as usize] = true;
        }
        Glushkov {
            classes,
            first: info.first.into_iter().collect(),
            last,
            follow: follow.into_iter().map(|s| s.into_iter().collect()).collect(),
            nullable: info.nullable,
        }
    }

    /// Number of positions (states excluding the start state).
    pub fn state_count(&self) -> usize {
        self.classes.len()
    }

    /// Total number of transitions (size of all follow sets plus the
    /// first set).
    pub fn transition_count(&self) -> usize {
        self.first.len() + self.follow.iter().map(Vec::len).sum::<usize>()
    }
}

fn number(ast: &Ast, classes: &mut Vec<ByteSet>) {
    ast.for_each_class(&mut |set| classes.push(*set));
}

struct Counter(PosId);

struct Info {
    nullable: bool,
    first: BTreeSet<PosId>,
    last: BTreeSet<PosId>,
}

fn analyze(ast: &Ast, next: &mut Counter, follow: &mut [BTreeSet<PosId>]) -> Info {
    match ast {
        Ast::Empty => Info { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() },
        Ast::Class(_) => {
            let p = next.0;
            next.0 += 1;
            Info {
                nullable: false,
                first: [p].into_iter().collect(),
                last: [p].into_iter().collect(),
            }
        }
        Ast::Concat(parts) => {
            let mut acc: Option<Info> = None;
            for part in parts {
                let b = analyze(part, next, follow);
                acc = Some(match acc {
                    None => b,
                    Some(a) => concat_info(a, b, follow),
                });
            }
            acc.unwrap_or(Info { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() })
        }
        Ast::Alt(parts) => {
            let mut nullable = false;
            let mut first = BTreeSet::new();
            let mut last = BTreeSet::new();
            for part in parts {
                let i = analyze(part, next, follow);
                nullable |= i.nullable;
                first.extend(i.first);
                last.extend(i.last);
            }
            Info { nullable, first, last }
        }
        Ast::Star(inner) => {
            let i = analyze(inner, next, follow);
            loop_back(&i, follow);
            Info { nullable: true, first: i.first, last: i.last }
        }
        Ast::Plus(inner) => {
            let i = analyze(inner, next, follow);
            loop_back(&i, follow);
            Info { nullable: i.nullable, first: i.first, last: i.last }
        }
        Ast::Opt(inner) => {
            let i = analyze(inner, next, follow);
            Info { nullable: true, first: i.first, last: i.last }
        }
        Ast::Repeat { .. } => {
            unreachable!("bounded repetitions are expanded by normalize() before analysis")
        }
    }
}

fn concat_info(a: Info, b: Info, follow: &mut [BTreeSet<PosId>]) -> Info {
    for &p in &a.last {
        follow[p as usize].extend(b.first.iter().copied());
    }
    Info {
        nullable: a.nullable && b.nullable,
        first: if a.nullable {
            a.first.union(&b.first).copied().collect()
        } else {
            a.first
        },
        last: if b.nullable {
            a.last.union(&b.last).copied().collect()
        } else {
            b.last
        },
    }
}

fn loop_back(i: &Info, follow: &mut [BTreeSet<PosId>]) {
    for &p in &i.last {
        follow[p as usize].extend(i.first.iter().copied());
    }
}

/// Rewrites `R{min,max}` into `R·…·R·R?·…·R?` (or a trailing `R*` for an
/// open bound), the classic structural expansion.
fn expand_repeat(node: &Ast, min: u32, max: Option<u32>) -> Ast {
    let mut parts: Vec<Ast> = Vec::new();
    for _ in 0..min {
        parts.push(node.clone());
    }
    match max {
        None => parts.push(Ast::Star(Box::new(node.clone()))),
        Some(m) => {
            for _ in min..m {
                parts.push(Ast::Opt(Box::new(node.clone())));
            }
        }
    }
    match parts.len() {
        0 => Ast::Empty,
        1 => parts.pop().expect("one element"),
        _ => Ast::Concat(parts),
    }
}

/// Expands all bounded repetitions so numbering and analysis agree.
pub fn normalize(ast: &Ast) -> Ast {
    match ast {
        Ast::Empty | Ast::Class(_) => ast.clone(),
        Ast::Concat(parts) => Ast::Concat(parts.iter().map(normalize).collect()),
        Ast::Alt(parts) => Ast::Alt(parts.iter().map(normalize).collect()),
        Ast::Star(i) => Ast::Star(Box::new(normalize(i))),
        Ast::Plus(i) => Ast::Plus(Box::new(normalize(i))),
        Ast::Opt(i) => Ast::Opt(Box::new(normalize(i))),
        Ast::Repeat { node, min, max } => {
            let n = normalize(node);
            expand_repeat(&n, *min, *max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::parse;

    fn build(pat: &str) -> Glushkov {
        Glushkov::build(&normalize(&parse(pat).unwrap()))
    }

    #[test]
    fn literal_chain() {
        let g = build("abc");
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.first, vec![0]);
        assert_eq!(g.last, vec![false, false, true]);
        assert_eq!(g.follow[0], vec![1]);
        assert_eq!(g.follow[1], vec![2]);
        assert!(g.follow[2].is_empty());
        assert!(!g.nullable);
    }

    #[test]
    fn alternation() {
        let g = build("ab|cd");
        assert_eq!(g.state_count(), 4);
        assert_eq!(g.first, vec![0, 2]);
        assert_eq!(g.last, vec![false, true, false, true]);
    }

    #[test]
    fn star_loops_back() {
        let g = build("a(bc)*d");
        assert_eq!(g.state_count(), 4);
        // After c (pos 2) we may loop to b (pos 1) or proceed to d (pos 3).
        assert_eq!(g.follow[2], vec![1, 3]);
        // After a: b or d.
        assert_eq!(g.follow[0], vec![1, 3]);
        assert!(!g.nullable);
    }

    #[test]
    fn nullable_star() {
        let g = build("a*");
        assert!(g.nullable);
        assert_eq!(g.first, vec![0]);
        assert_eq!(g.follow[0], vec![0]);
    }

    #[test]
    fn plus_nullability() {
        assert!(!build("a+").nullable);
        assert!(build("(a?)+" ).nullable);
    }

    #[test]
    fn bounded_repeat_expands() {
        let g = build("a{2,4}");
        assert_eq!(g.state_count(), 4);
        assert_eq!(g.last, vec![false, true, true, true]);
        let h = build("a{3}");
        assert_eq!(h.state_count(), 3);
        assert_eq!(h.last, vec![false, false, true]);
    }

    #[test]
    fn open_repeat() {
        let g = build("a{2,}");
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.follow[2], vec![2]);
        assert_eq!(g.last, vec![false, true, true]);
    }

    #[test]
    fn transition_count() {
        let g = build("abc");
        assert_eq!(g.transition_count(), 3); // first(1) + follows(2)
    }
}

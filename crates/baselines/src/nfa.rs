//! Multi-pattern NFA simulation over Glushkov automata.
//!
//! This is the classic one-byte-at-a-time execution model the paper's
//! automata baselines (ngAP, and Hyperscan's NFA tail) use: an active
//! state set stepped per input symbol, with all-match semantics (the
//! first-set is re-seeded at every position). The simulator counts the
//! worklist sizes and transition lookups that drive the GPU-NFA cost
//! model.

use crate::glushkov::{Glushkov, PosId};
use bitgen_bitstream::BitStream;
use bitgen_regex::{Ast, ByteSet};

/// A union automaton over several regexes with per-regex accept tracking.
#[derive(Debug, Clone)]
pub struct MultiNfa {
    classes: Vec<ByteSet>,
    first: Vec<PosId>,
    follow: Vec<Vec<PosId>>,
    /// `accept[p]`: the regex index `p` accepts for, if any.
    accept: Vec<Option<u32>>,
    regex_count: usize,
}

/// Work statistics of one NFA run (drives the ngAP-style cost model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NfaStats {
    /// Input bytes processed.
    pub bytes: u64,
    /// Worklist items processed (active states summed over all bytes).
    pub worklist_items: u64,
    /// Transition lookups performed (follow/first entries examined).
    pub transitions: u64,
    /// Largest active set seen at any byte.
    pub max_active: usize,
}

impl NfaStats {
    /// Mean active states per input byte — ngAP's effective parallelism.
    pub fn avg_active(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.worklist_items as f64 / self.bytes as f64
        }
    }
}

/// Result of a multi-pattern NFA run.
#[derive(Debug, Clone)]
pub struct NfaRun {
    /// Union of all match ends (bit *i* set ⇔ some regex matches ending
    /// at byte *i*).
    pub ends: BitStream,
    /// Matches found per regex.
    pub per_regex_counts: Vec<u64>,
    /// Work statistics.
    pub stats: NfaStats,
}

impl MultiNfa {
    /// Builds the union automaton for a group of regexes.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitgen_regex::parse;
    /// use bitgen_baselines::MultiNfa;
    ///
    /// let nfa = MultiNfa::build(&[parse("ab").unwrap(), parse("bc").unwrap()]);
    /// let run = nfa.run(b"abc");
    /// assert_eq!(run.ends.positions(), vec![1, 2]);
    /// ```
    pub fn build(asts: &[Ast]) -> MultiNfa {
        let mut classes = Vec::new();
        let mut first = Vec::new();
        let mut follow = Vec::new();
        let mut accept = Vec::new();
        for (ri, ast) in asts.iter().enumerate() {
            let g = Glushkov::build(ast);
            let base = classes.len() as PosId;
            classes.extend(g.classes.iter().copied());
            first.extend(g.first.iter().map(|p| p + base));
            follow.extend(g.follow.iter().map(|f| f.iter().map(|p| p + base).collect::<Vec<_>>()));
            accept.extend(g.last.iter().map(|&l| if l { Some(ri as u32) } else { None }));
        }
        MultiNfa { classes, first, follow, accept, regex_count: asts.len() }
    }

    /// Number of states (positions) in the union automaton.
    pub fn state_count(&self) -> usize {
        self.classes.len()
    }

    /// Byte class of position `q`.
    pub fn class_of(&self, q: PosId) -> &ByteSet {
        &self.classes[q as usize]
    }

    /// Follow set of position `q`.
    pub fn follow_of(&self, q: PosId) -> &[PosId] {
        &self.follow[q as usize]
    }

    /// Positions that can begin a match (re-seeded at every byte under
    /// all-match semantics).
    pub fn first_set(&self) -> &[PosId] {
        &self.first
    }

    /// The regex index position `q` accepts for, if any.
    pub fn accept_of(&self, q: PosId) -> Option<u32> {
        self.accept[q as usize]
    }

    /// Runs the automaton over `input` under all-match semantics.
    pub fn run(&self, input: &[u8]) -> NfaRun {
        self.run_seeded(input, &[])
    }

    /// Runs with an initial active set (positions already live before the
    /// first byte) — used by the lazy-DFA engine to hand over in-flight
    /// matches when its state cache overflows.
    pub fn run_seeded(&self, input: &[u8], seed: &[PosId]) -> NfaRun {
        let n = self.classes.len();
        let mut ends = BitStream::zeros(input.len());
        let mut per_regex_counts = vec![0u64; self.regex_count];
        let mut stats = NfaStats { bytes: input.len() as u64, ..NfaStats::default() };
        let mut active: Vec<PosId> = seed.to_vec();
        // Generation-stamped membership marks avoid clearing per byte.
        let mut mark = vec![0u32; n];
        let mut generation = 0u32;
        for (i, &byte) in input.iter().enumerate() {
            generation += 1;
            stats.worklist_items += active.len() as u64;
            let mut next: Vec<PosId> = Vec::new();
            // Candidate transitions: follows of active states plus the
            // ever-restarting first set (matches may begin anywhere).
            for &a in &active {
                let p = a as usize;
                for &q in &self.follow[p] {
                    stats.transitions += 1;
                    try_enter(q, byte, &self.classes, &mut mark, generation, &mut next);
                }
            }
            for &q in &self.first {
                stats.transitions += 1;
                try_enter(q, byte, &self.classes, &mut mark, generation, &mut next);
            }
            for &q in &next {
                if let Some(ri) = self.accept[q as usize] {
                    if !ends.get(i) {
                        ends.set(i, true);
                    }
                    per_regex_counts[ri as usize] += 1;
                }
            }
            stats.max_active = stats.max_active.max(next.len());
            active = next;
        }
        NfaRun { ends, per_regex_counts, stats }
    }
}

fn try_enter(
    q: PosId,
    byte: u8,
    classes: &[ByteSet],
    mark: &mut [u32],
    generation: u32,
    next: &mut Vec<PosId>,
) {
    let qi = q as usize;
    if mark[qi] != generation && classes[qi].contains(byte) {
        mark[qi] = generation;
        next.push(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::{multi_match_ends, parse};

    fn ends_of(pats: &[&str], input: &[u8]) -> Vec<usize> {
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        MultiNfa::build(&asts).run(input).ends.positions()
    }

    fn assert_agrees(pats: &[&str], input: &[u8]) {
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        let expect = multi_match_ends(&asts, input);
        assert_eq!(ends_of(pats, input), expect, "{pats:?} on {input:?}");
    }

    #[test]
    fn paper_examples() {
        assert_eq!(ends_of(&["cat"], b"bobcat"), vec![5]);
        assert_eq!(ends_of(&["(abc)|d"], b"abcdabce"), vec![2, 3, 6]);
        assert_eq!(ends_of(&["a(bc)*d"], b"abcbcd"), vec![5]);
    }

    #[test]
    fn agrees_with_oracle() {
        for (pats, input) in [
            (&["a+b", "ba"][..], &b"aababba"[..]),
            (&["[a-c]{2,3}"], b"abcabc"),
            (&["x(yz)*w", "zw"], b"xyzyzw xw zw"),
            (&["a*"], b"baab"),
            (&["(ab|ba)+"], b"ababba"),
        ] {
            assert_agrees(pats, input);
        }
    }

    #[test]
    fn per_regex_counts() {
        let asts = vec![parse("ab").unwrap(), parse("b").unwrap()];
        let run = MultiNfa::build(&asts).run(b"abab");
        assert_eq!(run.per_regex_counts, vec![2, 2]);
    }

    #[test]
    fn stats_reflect_activity() {
        let asts = vec![parse("zzzz").unwrap()];
        let nfa = MultiNfa::build(&asts);
        let cold = nfa.run(b"aaaaaaaa").stats;
        let hot = nfa.run(b"zzzzzzzz").stats;
        assert_eq!(cold.worklist_items, 0, "no state ever activates");
        assert!(hot.worklist_items > 0);
        assert!(hot.avg_active() > cold.avg_active());
        assert!(hot.max_active >= 1);
        // First-set probing is counted even when nothing activates.
        assert!(cold.transitions >= 8);
    }

    #[test]
    fn empty_input() {
        assert_eq!(ends_of(&["a"], b""), Vec::<usize>::new());
    }

    #[test]
    fn union_state_count() {
        let asts = vec![parse("abc").unwrap(), parse("de").unwrap()];
        assert_eq!(MultiNfa::build(&asts).state_count(), 5);
    }
}

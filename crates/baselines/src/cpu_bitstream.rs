//! The icgrep-like CPU bitstream baseline.
//!
//! icgrep compiles regexes to bitstream programs and executes them on the
//! CPU, one instruction at a time over full-length streams. This engine
//! reuses the exact lowering of `bitgen-ir` and its whole-stream
//! interpreter, which now runs on the `w64xN` wide-word kernels of
//! `bitgen-bitstream` — so the stand-in is SIMD-shaped like icgrep
//! itself (group-unrolled word loops plus the SWAR s2p transpose),
//! measured in wall-clock time by the harness. `BITGEN_LANES=1` pins it
//! back to the scalar reference path.

use bitgen_bitstream::{Basis, BitStream};
use bitgen_ir::{interpret, lower_group, Program};
use bitgen_regex::Ast;

/// A CPU bitstream engine over pre-lowered regex groups.
#[derive(Debug, Clone)]
pub struct CpuBitstreamEngine {
    programs: Vec<Program>,
}

impl CpuBitstreamEngine {
    /// Lowers each group of regexes into one bitstream program.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitgen_regex::parse;
    /// use bitgen_baselines::CpuBitstreamEngine;
    ///
    /// let groups = vec![vec![parse("ab").unwrap()], vec![parse("bc").unwrap()]];
    /// let engine = CpuBitstreamEngine::new(&groups);
    /// assert_eq!(engine.run(b"abc").positions(), vec![1, 2]);
    /// ```
    pub fn new(groups: &[Vec<Ast>]) -> CpuBitstreamEngine {
        CpuBitstreamEngine { programs: groups.iter().map(|g| lower_group(g)).collect() }
    }

    /// Wraps already-lowered programs (one per group) instead of
    /// re-lowering from ASTs. This is how the GPU engine builds its
    /// degradation fallback: the exact programs it would run on the
    /// emulator, interpreted on the CPU instead, so per-group outputs
    /// line up stream-for-stream with the kernel path's.
    pub fn from_programs(programs: Vec<Program>) -> CpuBitstreamEngine {
        CpuBitstreamEngine { programs }
    }

    /// Number of compiled programs (groups).
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// Total instructions across all programs.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Program::op_count).sum()
    }

    /// Runs one group's program over an already-transposed input,
    /// returning its raw output streams (same order and count as the
    /// program's declared outputs). The degradation path uses this to
    /// stand in for a failed (group × stream) CTA.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn run_group(&self, group: usize, basis: &Basis) -> Vec<BitStream> {
        interpret(&self.programs[group], basis).outputs
    }

    /// Runs all programs over `input`, returning the union match-end
    /// stream (bit *i* ⇔ some regex matches ending at byte *i*).
    pub fn run(&self, input: &[u8]) -> BitStream {
        let basis = Basis::transpose(input);
        let mut ends = BitStream::zeros(input.len());
        for prog in &self.programs {
            let r = interpret(prog, &basis);
            for out in &r.outputs {
                // Stream length is input+1; or_clipped drops the peek bit.
                ends.or_clipped(out);
            }
        }
        ends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::{multi_match_ends, parse};

    #[test]
    fn agrees_with_oracle() {
        let pats = ["a(bc)*d", "cat", "[0-9]+x"];
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        let engine = CpuBitstreamEngine::new(std::slice::from_ref(&asts));
        let input = b"abcbcd cat 42x";
        assert_eq!(engine.run(input).positions(), multi_match_ends(&asts, input));
    }

    #[test]
    fn grouping_does_not_change_results() {
        let pats = ["ab", "bc", "c+d"];
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        let one = CpuBitstreamEngine::new(std::slice::from_ref(&asts));
        let many = CpuBitstreamEngine::new(&asts.iter().map(|a| vec![a.clone()]).collect::<Vec<_>>());
        assert_eq!(one.program_count(), 1);
        assert_eq!(many.program_count(), 3);
        let input = b"abcd bccd";
        assert_eq!(one.run(input).positions(), many.run(input).positions());
    }

    #[test]
    fn empty_input() {
        let engine = CpuBitstreamEngine::new(&[vec![parse("a").unwrap()]]);
        assert!(!engine.run(b"").any());
    }

    #[test]
    fn run_group_matches_whole_run() {
        use bitgen_ir::lower_group;
        let groups: Vec<Vec<Ast>> =
            vec![vec![parse("ab").unwrap()], vec![parse("c+d").unwrap()]];
        let programs: Vec<_> = groups.iter().map(|g| lower_group(g)).collect();
        let engine = CpuBitstreamEngine::from_programs(programs);
        let input = b"abcd ccd";
        let basis = bitgen_bitstream::Basis::transpose(input);
        let mut union = BitStream::zeros(input.len());
        for g in 0..engine.program_count() {
            for out in engine.run_group(g, &basis) {
                union.or_clipped(&out);
            }
        }
        assert_eq!(union.positions(), CpuBitstreamEngine::new(&groups).run(input).positions());
    }
}

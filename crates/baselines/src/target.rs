//! [`BenchTarget`]: the one face every engine shows a benchmark loop.
//!
//! The trajectory harness (`bitgen-bench`), the repro tables, and the
//! examples all time engines through this trait, so there is exactly one
//! timing loop in the tree. A target is *prepared* (compiled, built)
//! before timing starts; [`BenchTarget::scan`] then does one complete
//! scan of the input and reports what it found.
//!
//! Engines split into two timing regimes:
//!
//! - **modelled** ([`BenchTarget::modelled`] is `true`): the scan's cost
//!   comes from the deterministic device cost model, returned in
//!   [`TargetRun::modelled_seconds`]. Bit-identical across hosts and
//!   thread counts — safe to compare across CI revisions.
//! - **measured**: the engine really runs on the host CPU and the
//!   harness wall-clocks the `scan` call. Host-dependent and noisy —
//!   cross-checked for match counts, compared only informationally.

use crate::{
    run_gpu_nfa, AhoCorasick, CpuBitstreamEngine, DfaEngine, GpuNfaModel, HybridEngine, HybridMt,
    MultiNfa,
};
use bitgen_gpu::DeviceConfig;

/// What one [`BenchTarget::scan`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetRun {
    /// Match-end positions found (whatever "match" means for the
    /// engine; literal engines count literal hits).
    pub matches: u64,
    /// Modelled seconds for the scan, when the target is modelled;
    /// `None` means "wall-clock me".
    pub modelled_seconds: Option<f64>,
}

/// An engine prepared to scan inputs under a benchmark loop.
pub trait BenchTarget {
    /// Stable identifier recorded in trajectory files (`"hybrid"`,
    /// `"gpu_nfa"`, ...).
    fn name(&self) -> &'static str;

    /// `true` when [`TargetRun::modelled_seconds`] carries the timing
    /// (deterministic cost model); `false` when the harness must
    /// wall-clock the call.
    fn modelled(&self) -> bool {
        false
    }

    /// Scans `input` once, end to end.
    fn scan(&mut self, input: &[u8]) -> TargetRun;
}

impl BenchTarget for HybridEngine {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn scan(&mut self, input: &[u8]) -> TargetRun {
        TargetRun { matches: self.run(input).count_ones() as u64, modelled_seconds: None }
    }
}

impl BenchTarget for HybridMt {
    fn name(&self) -> &'static str {
        "hybrid_mt"
    }

    fn scan(&mut self, input: &[u8]) -> TargetRun {
        TargetRun { matches: self.run(input).count_ones() as u64, modelled_seconds: None }
    }
}

impl BenchTarget for CpuBitstreamEngine {
    fn name(&self) -> &'static str {
        "cpu_bitstream"
    }

    fn scan(&mut self, input: &[u8]) -> TargetRun {
        TargetRun { matches: self.run(input).count_ones() as u64, modelled_seconds: None }
    }
}

impl BenchTarget for DfaEngine {
    fn name(&self) -> &'static str {
        "dfa"
    }

    fn scan(&mut self, input: &[u8]) -> TargetRun {
        TargetRun { matches: self.run(input).ends.count_ones() as u64, modelled_seconds: None }
    }
}

impl BenchTarget for AhoCorasick {
    fn name(&self) -> &'static str {
        "aho"
    }

    fn scan(&mut self, input: &[u8]) -> TargetRun {
        TargetRun { matches: self.find_all(input).len() as u64, modelled_seconds: None }
    }
}

/// The ngAP-style GPU NFA baseline as a bench target: the NFA really
/// runs (measured transitions), but its reported time comes from the
/// latency/bandwidth device model, so the target is modelled.
#[derive(Debug)]
pub struct GpuNfaTarget {
    nfa: MultiNfa,
    device: DeviceConfig,
    model: GpuNfaModel,
}

impl GpuNfaTarget {
    /// Prepares the NFA for `device` under `model`.
    pub fn new(nfa: MultiNfa, device: DeviceConfig, model: GpuNfaModel) -> GpuNfaTarget {
        GpuNfaTarget { nfa, device, model }
    }
}

impl BenchTarget for GpuNfaTarget {
    fn name(&self) -> &'static str {
        "gpu_nfa"
    }

    fn modelled(&self) -> bool {
        true
    }

    fn scan(&mut self, input: &[u8]) -> TargetRun {
        let report = run_gpu_nfa(&self.nfa, input, &self.device, &self.model);
        TargetRun {
            matches: report.ends.count_ones() as u64,
            modelled_seconds: Some(report.seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::parse;

    #[test]
    fn baseline_targets_agree_through_the_trait() {
        let asts = vec![parse("ab").unwrap(), parse("c+d").unwrap()];
        let input = b"abcd ccd ab";
        let expected = HybridEngine::new(&asts).run(input).count_ones() as u64;
        let mut targets: Vec<Box<dyn BenchTarget>> = vec![
            Box::new(HybridEngine::new(&asts)),
            Box::new(HybridMt::new(&asts, 2)),
            Box::new(DfaEngine::new(&asts)),
            Box::new(CpuBitstreamEngine::new(std::slice::from_ref(&asts))),
            Box::new(GpuNfaTarget::new(
                MultiNfa::build(&asts),
                DeviceConfig::rtx3090(),
                GpuNfaModel::default(),
            )),
        ];
        for t in &mut targets {
            let run = t.scan(input);
            assert_eq!(run.matches, expected, "{}", t.name());
            assert_eq!(run.modelled_seconds.is_some(), t.modelled(), "{}", t.name());
        }
    }

    #[test]
    fn aho_counts_literal_hits() {
        // `AhoCorasick` has an inherent callback-style `scan`; go
        // through the trait explicitly, as harness loops do.
        let mut ac = AhoCorasick::new(&[b"ab".to_vec(), b"bc".to_vec()]);
        let run = BenchTarget::scan(&mut ac, b"abc abc");
        assert_eq!(run.matches, 4);
        assert!(!ac.modelled());
    }
}

//! The ngAP-style GPU NFA baseline model.
//!
//! ngAP executes NFAs on GPUs with a non-blocking worklist that exposes
//! symbol-level parallelism: every active (state, position) pair is an
//! irregular memory access, and throughput is governed by how many such
//! accesses are in flight at once. When few states are active the GPU is
//! latency-bound and utilisation collapses (the paper's ClamAV case:
//! 2.6 MB/s); deep worklists amortise the latency (Dotstar, Bro217).
//!
//! The model runs the real NFA (so worklist sizes are *measured*, not
//! assumed) and prices the run:
//!
//! ```text
//! seconds = max( bytes · latency / (clock · overlap),   // latency bound
//!                transitions · line / bandwidth )       // traffic bound
//! overlap = clamp(avg_active, MIN_OVERLAP, max_mlp)
//! ```

use crate::nfa::{MultiNfa, NfaStats};
use bitgen_bitstream::BitStream;
use bitgen_gpu::DeviceConfig;

/// Tunables of the ngAP-style model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuNfaModel {
    /// Maximum memory-level parallelism the worklist machinery sustains.
    pub max_mlp: f64,
    /// Floor on the overlap factor: even an empty worklist still issues
    /// the start-state probes, partially pipelined.
    pub min_overlap: f64,
    /// Bytes of DRAM traffic per transition lookup (one access line).
    pub line_bytes: f64,
}

impl Default for GpuNfaModel {
    fn default() -> GpuNfaModel {
        GpuNfaModel { max_mlp: 64.0, min_overlap: 0.5, line_bytes: 64.0 }
    }
}

/// Result of running the ngAP-style baseline.
#[derive(Debug, Clone)]
pub struct GpuNfaReport {
    /// Union match-end stream.
    pub ends: BitStream,
    /// Modelled end-to-end seconds on the device.
    pub seconds: f64,
    /// Measured NFA work statistics.
    pub stats: NfaStats,
}

impl GpuNfaReport {
    /// Modelled throughput in MB/s.
    pub fn throughput_mbps(&self) -> f64 {
        if self.seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.stats.bytes as f64 / 1e6 / self.seconds
    }
}

/// Runs `nfa` over `input` and prices it on `device`.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_baselines::{run_gpu_nfa, GpuNfaModel, MultiNfa};
/// use bitgen_gpu::DeviceConfig;
///
/// let nfa = MultiNfa::build(&[parse("ab").unwrap()]);
/// let report = run_gpu_nfa(&nfa, b"abababab", &DeviceConfig::rtx3090(), &GpuNfaModel::default());
/// assert_eq!(report.ends.positions(), vec![1, 3, 5, 7]);
/// assert!(report.seconds > 0.0);
/// ```
pub fn run_gpu_nfa(
    nfa: &MultiNfa,
    input: &[u8],
    device: &DeviceConfig,
    model: &GpuNfaModel,
) -> GpuNfaReport {
    let run = nfa.run(input);
    let stats = run.stats;
    let overlap = stats.avg_active().clamp(model.min_overlap, model.max_mlp);
    let clock_hz = device.clock_ghz * 1e9;
    let latency_seconds =
        stats.bytes as f64 * device.dram_latency_cycles / (clock_hz * overlap);
    let traffic_seconds =
        stats.transitions as f64 * model.line_bytes / (device.mem_bw_gbps * 1e9);
    GpuNfaReport { ends: run.ends, seconds: latency_seconds.max(traffic_seconds), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::parse;

    fn nfa(pats: &[&str]) -> MultiNfa {
        let asts: Vec<_> = pats.iter().map(|p| parse(p).unwrap()).collect();
        MultiNfa::build(&asts)
    }

    #[test]
    fn low_activity_is_latency_bound() {
        // Virus-signature-like: long literal that never matches. Worklist
        // stays near empty → throughput collapses (the ClamAV effect).
        let cold = nfa(&["0123456789abcdef"]);
        let input: Vec<u8> = std::iter::repeat_n(b'z', 100_000).collect();
        let r = run_gpu_nfa(&cold, &input, &DeviceConfig::rtx3090(), &GpuNfaModel::default());
        let mbps = r.throughput_mbps();
        assert!(mbps < 20.0, "cold worklist should be slow: {mbps} MB/s");
    }

    #[test]
    fn deeper_worklists_run_faster_per_byte() {
        let input: Vec<u8> = (0..100_000u32).map(|i| b"abcab"[i as usize % 5]).collect();
        let shallow = nfa(&["xyxyxy"]);
        let deep = nfa(&["a.{0,8}b", "ab(ca)*b", "(ab|bc)+a", "c.{1,6}a"]);
        let rs = run_gpu_nfa(&shallow, &input, &DeviceConfig::rtx3090(), &GpuNfaModel::default());
        let rd = run_gpu_nfa(&deep, &input, &DeviceConfig::rtx3090(), &GpuNfaModel::default());
        assert!(rd.stats.avg_active() > rs.stats.avg_active());
        assert!(rd.throughput_mbps() > rs.throughput_mbps());
    }

    #[test]
    fn h100_gains_little_l40s_gains_clock() {
        // The Fig. 15 ngAP shape: ~1× on H100, ~1.4× on L40S.
        let n = nfa(&["abc", "bcd"]);
        let input: Vec<u8> = (0..50_000u32).map(|i| b"abcdz"[i as usize % 5]).collect();
        let m = GpuNfaModel::default();
        let t3090 = run_gpu_nfa(&n, &input, &DeviceConfig::rtx3090(), &m).throughput_mbps();
        let th100 = run_gpu_nfa(&n, &input, &DeviceConfig::h100(), &m).throughput_mbps();
        let tl40s = run_gpu_nfa(&n, &input, &DeviceConfig::l40s(), &m).throughput_mbps();
        let rh = th100 / t3090;
        let rl = tl40s / t3090;
        assert!(rh > 0.85 && rh < 1.2, "H100 ratio {rh}");
        assert!(rl > 1.2 && rl < 1.7, "L40S ratio {rl}");
    }

    #[test]
    fn matches_are_functional_not_modelled() {
        let n = nfa(&["a(bc)*d"]);
        let r = run_gpu_nfa(&n, b"abcbcd x ad", &DeviceConfig::rtx3090(), &GpuNfaModel::default());
        assert_eq!(r.ends.positions(), vec![5, 10]);
    }
}

//! A lazy-DFA engine (RE2-style), built over the Glushkov NFA.
//!
//! RE2 avoids backtracking by simulating a DFA whose states are determinised
//! on demand and cached. Under the all-match semantics of this workspace,
//! a DFA state is the set of live NFA positions *including the restart*
//! (the first-set is folded into every transition, so matches may begin at
//! any byte). The state cache is capped: pathological pattern sets fall
//! back to plain NFA simulation for the rest of the input instead of
//! exploding memory — the same engineering compromise real DFA engines
//! make.

use crate::glushkov::PosId;
use crate::nfa::MultiNfa;
use bitgen_bitstream::BitStream;
use bitgen_regex::Ast;
use std::collections::HashMap;

/// Statistics of one DFA run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfaStats {
    /// Distinct DFA states materialised so far (cumulative for the
    /// engine).
    pub states: usize,
    /// Transitions taken from the cache.
    pub cached_transitions: u64,
    /// Transitions determinised on this run.
    pub built_transitions: u64,
    /// Bytes handled by the NFA fallback after a cache overflow.
    pub fallback_bytes: u64,
}

/// A lazily-determinised DFA over a multi-pattern Glushkov NFA.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_baselines::DfaEngine;
///
/// let mut dfa = DfaEngine::new(&[parse("a(bc)*d").unwrap(), parse("cat").unwrap()]);
/// let run = dfa.run(b"bobcat abcbcd");
/// assert_eq!(run.ends.positions(), vec![5, 12]);
/// ```
#[derive(Debug)]
pub struct DfaEngine {
    nfa: MultiNfa,
    /// Interned state sets; index = DFA state id.
    states: Vec<Vec<PosId>>,
    intern: HashMap<Vec<PosId>, u32>,
    /// `(state, byte) -> state` transition cache.
    transitions: HashMap<(u32, u8), u32>,
    /// Per-state: does any member accept (for any regex)?
    accepting: Vec<bool>,
    /// Cap on materialised states before falling back to the NFA.
    max_states: usize,
}

/// Result of a DFA run.
#[derive(Debug, Clone)]
pub struct DfaRun {
    /// Union match-end stream.
    pub ends: BitStream,
    /// Run statistics.
    pub stats: DfaStats,
}

/// Default cap on materialised DFA states.
pub const DEFAULT_MAX_STATES: usize = 10_000;

impl DfaEngine {
    /// Builds the engine (the DFA itself is determinised lazily).
    pub fn new(asts: &[Ast]) -> DfaEngine {
        DfaEngine::with_max_states(asts, DEFAULT_MAX_STATES)
    }

    /// Builds with an explicit state cap.
    pub fn with_max_states(asts: &[Ast], max_states: usize) -> DfaEngine {
        let nfa = MultiNfa::build(asts);
        let mut engine = DfaEngine {
            nfa,
            states: Vec::new(),
            intern: HashMap::new(),
            transitions: HashMap::new(),
            accepting: Vec::new(),
            max_states: max_states.max(1),
        };
        engine.intern_state(Vec::new());
        engine
    }

    /// Number of DFA states materialised so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Scans `input`, lazily building missing states/transitions.
    pub fn run(&mut self, input: &[u8]) -> DfaRun {
        let mut ends = BitStream::zeros(input.len());
        let mut stats = DfaStats { states: self.states.len(), ..DfaStats::default() };
        let mut state = 0u32; // the empty set (plus implicit restart)
        for (i, &byte) in input.iter().enumerate() {
            let next = match self.transitions.get(&(state, byte)) {
                Some(&n) => {
                    stats.cached_transitions += 1;
                    n
                }
                None => {
                    if self.states.len() >= self.max_states {
                        // Cache full: finish with the NFA, seeded with the
                        // current state's in-flight positions so matches
                        // spanning the switch survive.
                        let seed = self.states[state as usize].clone();
                        let rest = self.nfa.run_seeded(&input[i..], &seed);
                        for p in rest.ends.positions() {
                            ends.set(i + p, true);
                        }
                        stats.fallback_bytes = (input.len() - i) as u64;
                        stats.states = self.states.len();
                        return DfaRun { ends, stats };
                    }
                    stats.built_transitions += 1;
                    let n = self.determinise(state, byte);
                    self.transitions.insert((state, byte), n);
                    n
                }
            };
            state = next;
            if self.accepting[state as usize] {
                ends.set(i, true);
            }
        }
        stats.states = self.states.len();
        DfaRun { ends, stats }
    }

    /// Computes the successor of `state` on `byte`: positions enterable
    /// from the state's members' follow sets or from the restart first-set.
    fn determinise(&mut self, state: u32, byte: u8) -> u32 {
        let mut next: Vec<PosId> = Vec::new();
        let members = self.states[state as usize].clone();
        let push = |q: PosId, next: &mut Vec<PosId>| {
            if self.nfa.class_of(q).contains(byte) && !next.contains(&q) {
                next.push(q);
            }
        };
        for &p in &members {
            for &q in self.nfa.follow_of(p) {
                push(q, &mut next);
            }
        }
        for &q in self.nfa.first_set() {
            push(q, &mut next);
        }
        next.sort_unstable();
        self.intern_state(next)
    }

    fn intern_state(&mut self, set: Vec<PosId>) -> u32 {
        if let Some(&id) = self.intern.get(&set) {
            return id;
        }
        let id = self.states.len() as u32;
        let accepting = set.iter().any(|&p| self.nfa.accept_of(p).is_some());
        self.states.push(set.clone());
        self.intern.insert(set, id);
        self.accepting.push(accepting);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::{multi_match_ends, parse};

    fn engine(pats: &[&str]) -> (DfaEngine, Vec<Ast>) {
        let asts: Vec<Ast> = pats.iter().map(|p| parse(p).unwrap()).collect();
        (DfaEngine::new(&asts), asts)
    }

    #[test]
    fn agrees_with_oracle() {
        for (pats, input) in [
            (&["cat"][..], &b"bobcat cats"[..]),
            (&["a(bc)*d"], b"ad abcd abcbcd"),
            (&["ab", "bc", "c+d"], b"abcd bccd"),
            (&["(ab|ba)+"], b"abbaab"),
            (&["[a-f]{2,4}"], b"abcdefgh"),
        ] {
            let (mut dfa, asts) = engine(pats);
            let got = dfa.run(input).ends.positions();
            assert_eq!(got, multi_match_ends(&asts, input), "{pats:?}");
        }
    }

    #[test]
    fn cache_warms_across_runs() {
        let (mut dfa, _) = engine(&["abc", "bcd"]);
        let cold = dfa.run(b"abcdabcd").stats;
        let warm = dfa.run(b"abcdabcd").stats;
        assert!(cold.built_transitions > 0);
        assert_eq!(warm.built_transitions, 0, "second run is fully cached");
        assert!(warm.cached_transitions > 0);
    }

    #[test]
    fn state_cap_falls_back_to_nfa() {
        let asts: Vec<Ast> = ["a[ab]{1,6}b", "b[ab]{1,6}a"]
            .iter()
            .map(|p| parse(p).unwrap())
            .collect();
        let mut dfa = DfaEngine::with_max_states(&asts, 3);
        let input = b"abababababab";
        let run = dfa.run(input);
        assert!(run.stats.fallback_bytes > 0, "tiny cap must trigger fallback");
        assert_eq!(run.ends.positions(), multi_match_ends(&asts, input));
        assert!(dfa.state_count() <= 3);
    }

    #[test]
    fn empty_input_and_no_patterns() {
        let (mut dfa, _) = engine(&["x"]);
        assert!(!dfa.run(b"").ends.any());
        let mut none = DfaEngine::new(&[]);
        assert!(!none.run(b"anything").ends.any());
    }
}

//! Property tests for the baseline substrates: Aho–Corasick against a
//! naive scanner, and the Glushkov NFA against the oracle.

use bitgen_baselines::{AhoCorasick, MultiNfa};
use bitgen_regex::{multi_match_ends, Ast, ByteSet};
use proptest::prelude::*;

fn arb_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(b"abc".to_vec()), 1..6),
        1..6,
    )
}

fn arb_haystack() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abcd".to_vec()), 0..120)
}

/// Naive multi-pattern all-occurrence scan.
fn naive(patterns: &[Vec<u8>], haystack: &[u8]) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    for (i, &b) in haystack.iter().enumerate() {
        let _ = b;
        for (pi, p) in patterns.iter().enumerate() {
            if p.is_empty() || i + 1 < p.len() {
                continue;
            }
            if &haystack[i + 1 - p.len()..=i] == p.as_slice() {
                out.push((pi as u32, i));
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn aho_corasick_matches_naive(patterns in arb_patterns(), haystack in arb_haystack()) {
        let ac = AhoCorasick::new(&patterns);
        let mut got: Vec<(u32, usize)> =
            ac.find_all(&haystack).iter().map(|m| (m.pattern, m.end)).collect();
        let mut want = naive(&patterns, &haystack);
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nfa_union_matches_oracle(
        lits in arb_patterns(),
        haystack in arb_haystack(),
    ) {
        // Patterns: literals plus classed variants.
        let asts: Vec<Ast> = lits
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i % 2 == 0 {
                    Ast::literal(l)
                } else {
                    // Replace the first byte with a small class.
                    let mut parts: Vec<Ast> =
                        l.iter().map(|&b| Ast::Class(ByteSet::singleton(b))).collect();
                    parts[0] = Ast::Class(ByteSet::range(b'a', b'b'));
                    if parts.len() == 1 { parts.pop().unwrap() } else { Ast::Concat(parts) }
                }
            })
            .collect();
        let got = MultiNfa::build(&asts).run(&haystack).ends.positions();
        let want = multi_match_ends(&asts, &haystack);
        prop_assert_eq!(got, want);
    }
}

//! Overlap-distance analysis for Dependency-Aware Thread-Data Mapping
//! (§4.2 of the paper).
//!
//! Interleaved execution computes each block on a *window* that extends the
//! block left and right; every intermediate is recomputed inside the window
//! rather than forwarded between iterations. This analysis determines how
//! far the window must extend.
//!
//! For every variable `v` we track a [`Hull`] `(left, right)`: computing a
//! correct value of `v` at position *i* requires window positions
//! `[i - left, i + right]` — the interval form of the paper's
//! `max_P (max_i δ_i − min_i δ_i)` cumulative-shift analysis. `Advance k`
//! (the paper's `>> k`) reaches back `k` positions; `Retreat k` reaches
//! forward.
//!
//! `while` loops accumulate shift offsets per trip (the paper's
//! multiplicity functions `μ_s`). The analysis evaluates each loop body
//! twice and reports the per-trip hull *growth*; the executor multiplies by
//! observed trip counts at runtime and verifies the provided window was
//! large enough (falling back when it was not).

use bitgen_ir::{Op, Program, Stmt};
use std::collections::HashMap;

/// Window requirement of a value: `left` positions before and `right`
/// positions after must be present (and correct) in the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hull {
    /// Positions required before (toward lower indices). Grows with
    /// `Advance` (the paper's right shift).
    pub left: u64,
    /// Positions required after. Grows with `Retreat`.
    pub right: u64,
}

impl Hull {
    /// The zero hull: the value only depends on its own position.
    pub const ZERO: Hull = Hull { left: 0, right: 0 };

    /// Componentwise maximum (join of two dataflow paths).
    pub fn join(self, other: Hull) -> Hull {
        Hull { left: self.left.max(other.left), right: self.right.max(other.right) }
    }

    /// Hull after an `Advance` by `k`: the paper's `δ → δ + k`.
    pub fn advance(self, k: u64) -> Hull {
        Hull { left: self.left + k, right: self.right.saturating_sub(k) }
    }

    /// Hull after a `Retreat` by `k`: the paper's `δ → δ − k`.
    pub fn retreat(self, k: u64) -> Hull {
        Hull { left: self.left.saturating_sub(k), right: self.right + k }
    }

    /// The paper's overlap distance Δ: total extra bits recomputed per
    /// block.
    pub fn total(self) -> u64 {
        self.left + self.right
    }

    /// Componentwise difference, clamped at zero (per-trip growth).
    fn growth_from(self, earlier: Hull) -> Hull {
        Hull {
            left: self.left.saturating_sub(earlier.left),
            right: self.right.saturating_sub(earlier.right),
        }
    }

    /// Componentwise scale.
    fn scaled(self, n: u64) -> Hull {
        Hull { left: self.left * n, right: self.right * n }
    }

    /// Componentwise sum.
    fn plus(self, other: Hull) -> Hull {
        Hull { left: self.left + other.left, right: self.right + other.right }
    }

    /// Returns `true` if `self` fits inside `provided`.
    pub fn fits(self, provided: Hull) -> bool {
        self.left <= provided.left && self.right <= provided.right
    }
}

/// Result of the overlap analysis of one program.
#[derive(Debug, Clone)]
pub struct OverlapInfo {
    /// Static window requirement: correct for any execution in which every
    /// loop runs at most [`BASE_TRIPS`] trips.
    pub base: Hull,
    /// Per-unit hull growth of each dynamic site (`while` loops and long
    /// additions), indexed by [`LoopId`] pre-order. A zero hull means the
    /// site adds no cross-block reach.
    pub loop_growth: Vec<Hull>,
}

/// Number of loop trips already covered by [`OverlapInfo::base`].
pub const BASE_TRIPS: u64 = 2;

/// Pre-order index of a `while` statement within its program.
///
/// The executor uses the same numbering to report observed trip counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopId(pub u32);

impl OverlapInfo {
    /// Runs the analysis on `program`.
    pub fn analyze(program: &Program) -> OverlapInfo {
        let mut an = Analyzer {
            hulls: vec![Hull::ZERO; program.num_streams() as usize],
            scopes: Vec::new(),
            loop_growth: Vec::new(),
            next_slot: 0,
        };
        an.run(program.stmts());
        // The requirement is driven by the values the program stores:
        // its outputs. Conservatively also keep every variable's hull via
        // the running maximum, because control-flow conditions are
        // evaluated window-wide too.
        let mut base = Hull::ZERO;
        for h in &an.hulls {
            base = base.join(*h);
        }
        OverlapInfo { base, loop_growth: an.loop_growth }
    }

    /// `true` when no loop grows the hull: the whole window requirement is
    /// known at compile time (the paper's "static" case, DTM-).
    pub fn is_static(&self) -> bool {
        self.loop_growth.iter().all(|g| *g == Hull::ZERO)
    }

    /// Window requirement for an execution in which loop `l` ran
    /// `trips[l]` times: `base + Σ_l max(trips_l − BASE_TRIPS, 0) · growth_l`.
    ///
    /// # Panics
    ///
    /// Panics if `trips.len()` differs from the number of loops.
    pub fn required(&self, trips: &[u64]) -> Hull {
        assert_eq!(trips.len(), self.loop_growth.len(), "one trip count per loop");
        let mut need = self.base;
        for (g, &t) in self.loop_growth.iter().zip(trips) {
            need = need.plus(g.scaled(t.saturating_sub(BASE_TRIPS)));
        }
        need
    }

    /// Number of `while` loops the analysis saw.
    pub fn loop_count(&self) -> usize {
        self.loop_growth.len()
    }
}

struct Analyzer {
    hulls: Vec<Hull>,
    /// Undo log per open control-flow scope: the hull each index held when
    /// the scope was entered, recorded on first write inside the scope.
    /// Closing a scope only touches the indices the body wrote, instead of
    /// cloning and re-joining every stream's hull per `if`/`while` —
    /// guarded (ZBS) programs have an `if` per skip interval, which made
    /// the old whole-vector clones quadratic in program size.
    scopes: Vec<HashMap<usize, Hull>>,
    loop_growth: Vec<Hull>,
    /// Structural pre-order cursor into `loop_growth`; rewound between the
    /// two measuring passes over a body so nested loops keep stable slots.
    next_slot: usize,
}

impl Analyzer {
    fn run(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Op(op) => {
                    if let Op::Add { .. } = op {
                        // Long addition is the second dynamic site kind:
                        // each bit of carry run reaches one position back.
                        let slot = self.alloc_slot();
                        self.loop_growth[slot] =
                            self.loop_growth[slot].join(Hull { left: 1, right: 0 });
                    }
                    self.exec(op);
                }
                Stmt::If { body, .. } => {
                    // The body may or may not run: join its effect with the
                    // incoming state.
                    self.scopes.push(HashMap::new());
                    self.run(body);
                    self.pop_scope_join();
                }
                Stmt::While { body, .. } => {
                    let slot = self.alloc_slot();
                    let watermark = self.next_slot;

                    self.scopes.push(HashMap::new());
                    // First trip.
                    self.run(body);
                    // Both trips walk the same statements, so their write
                    // sets coincide: the trip-1 undo log lists everything
                    // the growth computation has to look at.
                    let after_one: Vec<(usize, Hull)> = self
                        .scopes
                        .last()
                        .expect("scope just pushed")
                        .keys()
                        .map(|&i| (i, self.hulls[i]))
                        .collect();
                    // Second trip over the same body: rewind the slot
                    // cursor so nested loops reuse their slots, and take
                    // the delta as the per-trip growth. The trip-2 scope is
                    // discarded without a join (trip-2 values stand), and
                    // its undo entries are already covered by trip 1's.
                    self.next_slot = watermark;
                    self.scopes.push(HashMap::new());
                    self.run(body);
                    self.scopes.pop();
                    let mut growth = Hull::ZERO;
                    for &(i, h1) in &after_one {
                        growth = growth.join(self.hulls[i].growth_from(h1));
                    }
                    self.loop_growth[slot] = self.loop_growth[slot].join(growth);
                    // Zero-trip executions keep the pre-state: join it in.
                    self.pop_scope_join();
                }
            }
        }
    }

    /// Closes the innermost scope: every index written inside it joins its
    /// value from scope entry (the body may not have run at all), and the
    /// entry value propagates to the enclosing scope's undo log.
    fn pop_scope_join(&mut self) {
        let scope = self.scopes.pop().expect("scope underflow");
        for (i, before) in scope {
            self.hulls[i] = self.hulls[i].join(before);
            if let Some(parent) = self.scopes.last_mut() {
                parent.entry(i).or_insert(before);
            }
        }
    }

    /// Returns the structural slot for the loop being entered, allocating
    /// it on first visit.
    fn alloc_slot(&mut self) -> usize {
        let slot = self.next_slot;
        if slot == self.loop_growth.len() {
            self.loop_growth.push(Hull::ZERO);
        }
        self.next_slot += 1;
        slot
    }

    fn exec(&mut self, op: &Op) {
        let h = match op {
            Op::MatchCc { .. } | Op::Zero { .. } | Op::Ones { .. } => Hull::ZERO,
            Op::And { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::Add { a, b, .. }
            | Op::Xor { a, b, .. } => self.hull(*a).join(self.hull(*b)),
            Op::Not { src, .. } | Op::Assign { src, .. } => self.hull(*src),
            Op::Advance { src, amount, .. } => self.hull(*src).advance(*amount as u64),
            Op::Retreat { src, amount, .. } => self.hull(*src).retreat(*amount as u64),
        };
        let i = op.dst().index();
        if let Some(scope) = self.scopes.last_mut() {
            scope.entry(i).or_insert(self.hulls[i]);
        }
        self.hulls[i] = h;
    }

    fn hull(&self, id: bitgen_ir::StreamId) -> Hull {
        self.hulls[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_ir::{lower, ProgramBuilder};
    use bitgen_regex::{parse, ByteSet};

    #[test]
    fn straight_line_advances_accumulate() {
        // Fig. 7a: two right shifts along one path → Δ = 2.
        let mut b = ProgramBuilder::new();
        let b1 = b.match_cc(ByteSet::singleton(b'a'));
        let b5 = b.advance(b1, 1);
        let b6 = b.and(b1, b5);
        let b7 = b.advance(b6, 1);
        let b4 = b.and(b1, b7);
        b.mark_output(b4);
        let info = OverlapInfo::analyze(&b.finish());
        assert_eq!(info.base, Hull { left: 2, right: 0 });
        assert!(info.is_static());
        assert_eq!(info.base.total(), 2);
    }

    #[test]
    fn advance_then_retreat_matches_paper() {
        // Paper §4.2: b = a >> 1, c = b << 2 gives δ = {0, 1, −1}, Δ = 2.
        let mut b = ProgramBuilder::new();
        let a = b.match_cc(ByteSet::singleton(b'a'));
        let v = b.advance(a, 1);
        let c = b.retreat(v, 2);
        b.mark_output(c);
        let info = OverlapInfo::analyze(&b.finish());
        // The paper extends only leftward and needs Δ = 2; the symmetric
        // window formulation needs the same total, split as 2 forward
        // positions (v itself still contributes left = 1 to the running
        // maximum, which the window join keeps).
        assert_eq!(info.base, Hull { left: 1, right: 2 });
        assert_eq!(info.base.total(), 3);
    }

    #[test]
    fn retreat_then_advance() {
        let mut b = ProgramBuilder::new();
        let a = b.match_cc(ByteSet::singleton(b'a'));
        let v = b.retreat(a, 3);
        let c = b.advance(v, 1);
        b.mark_output(c);
        let info = OverlapInfo::analyze(&b.finish());
        assert_eq!(info.base, Hull { left: 1, right: 3 });
    }

    #[test]
    fn binary_ops_take_hull_join() {
        let mut b = ProgramBuilder::new();
        let x = b.match_cc(ByteSet::singleton(b'x'));
        let adv = b.advance(x, 4);
        let ret = b.retreat(x, 3);
        let j = b.or(adv, ret);
        b.mark_output(j);
        let info = OverlapInfo::analyze(&b.finish());
        assert_eq!(info.base, Hull { left: 4, right: 3 });
    }

    #[test]
    fn loop_growth_detected() {
        // Fig. 7b: one shift outside the loop, one per trip → Δ(n) = 1 + n.
        let prog = lower(&parse("a(bc)*d").unwrap());
        let info = OverlapInfo::analyze(&prog);
        assert_eq!(info.loop_count(), 1);
        assert!(!info.is_static());
        // The (bc) body advances twice per trip.
        assert_eq!(info.loop_growth[0], Hull { left: 2, right: 0 });
        // Trips beyond BASE_TRIPS enlarge the requirement linearly.
        let r3 = info.required(&[3]);
        let r7 = info.required(&[7]);
        assert_eq!(r7.left - r3.left, 4 * 2);
    }

    #[test]
    fn literal_is_static() {
        let prog = lower(&parse("abcde").unwrap());
        let info = OverlapInfo::analyze(&prog);
        assert!(info.is_static());
        // Every class match advances the cursors once: five advances, plus
        // the final retreat-by-1 that converts cursors to match ends.
        assert_eq!(info.base.left, 5);
        assert!(info.base.right >= 1);
    }

    #[test]
    fn bounded_repeat_is_static() {
        let prog = lower(&parse("a{1,8}b").unwrap());
        let info = OverlapInfo::analyze(&prog);
        assert!(info.is_static());
        assert!(info.base.left >= 8, "unrolled repeats accumulate: {:?}", info.base);
    }

    #[test]
    fn required_with_zero_trips_is_base() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let info = OverlapInfo::analyze(&prog);
        assert_eq!(info.required(&[0]), info.base);
        assert_eq!(info.required(&[BASE_TRIPS]), info.base);
    }

    #[test]
    #[should_panic(expected = "one trip count per loop")]
    fn required_checks_arity() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        OverlapInfo::analyze(&prog).required(&[]);
    }

    #[test]
    fn nested_loops_numbered_preorder() {
        let prog = lower(&parse("a((bc)*d)*e").unwrap());
        let info = OverlapInfo::analyze(&prog);
        assert_eq!(info.loop_count(), 2);
        // Both loops move markers forward each trip.
        assert!(info.loop_growth.iter().all(|g| g.left > 0));
    }

    #[test]
    fn hull_algebra() {
        let h = Hull { left: 3, right: 1 };
        assert_eq!(h.advance(2), Hull { left: 5, right: 0 });
        assert_eq!(h.retreat(2), Hull { left: 1, right: 3 });
        assert_eq!(h.join(Hull { left: 1, right: 4 }), Hull { left: 3, right: 4 });
        assert!(Hull { left: 2, right: 2 }.fits(Hull { left: 2, right: 3 }));
        assert!(!Hull { left: 3, right: 2 }.fits(Hull { left: 2, right: 3 }));
        assert_eq!(Hull::ZERO.total(), 0);
    }
}

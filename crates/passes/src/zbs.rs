//! Zero Block Skipping (§6 of the paper).
//!
//! Intermediate bitstreams are mostly zero in practice (partial regex
//! mismatches). Operations that *preserve zero* — AND, the shifts, and
//! plain copies — propagate an all-zero block unchanged, so a run of such
//! instructions can be skipped whenever its head value has no set bit in
//! the current block.
//!
//! The pass finds, for every candidate head `v`, the maximal following run
//! of instructions whose results are all zero-guaranteed given `v == 0`
//! (the paper's *zero path*, generalised to a zero-derived set), and wraps
//! the run in an `if (v)` guard. Where the paper validates a `goto` by
//! rejecting ranges that define values used outside the path, this pass
//! admits only zero-derived instructions into the range — the same
//! criterion — and additionally pre-zeroes every range result that is live
//! after the range, so a skipped range behaves exactly as if it had been
//! executed on zeros. The `interval` parameter reproduces the paper's
//! interval-based multi-guard insertion: inside a guarded range, additional
//! guards are attempted every `interval` instructions.

use bitgen_ir::{DefUse, Op, Program, Stmt, StreamId};
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// Configuration of the zero-block-skipping pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZbsConfig {
    /// Distance (in zero-path instructions) between successive guard
    /// attempts along one path — the paper's *interval size* (Fig. 14
    /// sweeps 1, 2, 4, 8).
    pub interval: usize,
    /// Minimum number of skippable instructions for a guard to pay for its
    /// block-wide reduction.
    pub min_range: usize,
}

impl Default for ZbsConfig {
    fn default() -> ZbsConfig {
        // The paper's default interval size is 8.
        ZbsConfig { interval: 8, min_range: 2 }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZbsStats {
    /// Guards inserted.
    pub guards: usize,
    /// Instructions now under some guard.
    pub guarded_ops: usize,
    /// Pre-zero initialisations added for range live-outs.
    pub prezeros: usize,
    /// Instructions examined while placing guards — the pass's work
    /// counter. Near-linear in program size by construction; the
    /// complexity regression suite asserts the ratio against IR ops.
    pub visits: u64,
}

/// Applies zero-block skipping to `program` in place.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::lower;
/// use bitgen_passes::{insert_zero_skips, ZbsConfig};
///
/// let mut prog = lower(&parse("abcdefgh").unwrap());
/// let stats = insert_zero_skips(&mut prog, ZbsConfig::default());
/// assert!(stats.guards >= 1);
/// ```
pub fn insert_zero_skips(program: &mut Program, config: ZbsConfig) -> ZbsStats {
    let du = DefUse::of(program);
    insert_zero_skips_with(program, config, &du)
}

/// [`insert_zero_skips`] with a caller-provided def/use analysis, so a
/// pass pipeline can compute [`DefUse`] once and share it.
///
/// `du` must describe `program` as passed in (the pass reads it; the
/// guards and pre-zeroes it inserts are not reflected back into `du`).
pub fn insert_zero_skips_with(program: &mut Program, config: ZbsConfig, du: &DefUse) -> ZbsStats {
    let mut stats = ZbsStats::default();
    let mut stmts = std::mem::take(program.stmts_mut());
    guard_stmts(&mut stmts, &config, du, &mut stats);
    *program.stmts_mut() = stmts;
    stats
}

fn guard_stmts(stmts: &mut Vec<Stmt>, config: &ZbsConfig, du: &DefUse, stats: &mut ZbsStats) {
    let old = std::mem::take(stmts);
    let mut run: Vec<Op> = Vec::new();
    for stmt in old {
        match stmt {
            Stmt::Op(op) => run.push(op),
            mut ctl => {
                flush(&mut run, stmts, config, du, stats);
                match &mut ctl {
                    Stmt::If { body, .. } | Stmt::While { body, .. } => {
                        guard_stmts(body, config, du, stats);
                    }
                    Stmt::Op(_) => unreachable!("ops are buffered above"),
                }
                stmts.push(ctl);
            }
        }
    }
    flush(&mut run, stmts, config, du, stats);
}

fn flush(run: &mut Vec<Op>, out: &mut Vec<Stmt>, config: &ZbsConfig, du: &DefUse, stats: &mut ZbsStats) {
    if run.is_empty() {
        return;
    }
    let block = std::mem::take(run);
    out.extend(guard_block(block, config, du, stats));
}

/// Zero-preservation: with `head == 0`, does `op` produce zero given that
/// everything in `zeroset` is zero?
fn preserves_zero(op: &Op, zeroset: &HashSet<StreamId>) -> bool {
    match op {
        // AND is zero whenever either operand is zero.
        Op::And { a, b, .. } => zeroset.contains(a) || zeroset.contains(b),
        // Shifts and copies of zero are zero.
        Op::Advance { src, .. } | Op::Retreat { src, .. } | Op::Assign { src, .. } => {
            zeroset.contains(src)
        }
        // OR/XOR/ADD of two zeros is zero (both must be derived).
        Op::Or { a, b, .. } | Op::Xor { a, b, .. } | Op::Add { a, b, .. } => {
            zeroset.contains(a) && zeroset.contains(b)
        }
        // NOT of zero is all-ones; constants and matches are independent.
        Op::Not { .. } | Op::MatchCc { .. } | Op::Zero { .. } | Op::Ones { .. } => false,
    }
}

/// A validated skippable range: the ops after a head instruction that may
/// all be skipped when the head value is zero.
struct ZeroRange {
    /// Exclusive end index of the range (the range is `start..end`).
    end: usize,
    /// Variables in the range guaranteed zero when the head is zero.
    zeroset: HashSet<StreamId>,
}

/// Per-block use positions, built once per straight-line run so range
/// validation never rescans the block counting uses.
struct BlockIndex {
    /// For each stream id: the block positions that read it, ascending.
    /// An op reading the same id twice contributes two entries, matching
    /// [`DefUse`]'s per-occurrence counts.
    use_pos: HashMap<StreamId, Vec<u32>>,
}

impl BlockIndex {
    fn build(block: &[Op]) -> BlockIndex {
        let mut use_pos: HashMap<StreamId, Vec<u32>> = HashMap::new();
        for (i, op) in block.iter().enumerate() {
            for s in op.sources() {
                use_pos.entry(s).or_default().push(i as u32);
            }
        }
        BlockIndex { use_pos }
    }

    /// The smallest exclusive range end that keeps every use of `d` (the
    /// dst defined at block position `p`) inside the range, or
    /// `usize::MAX` when `d` is also read outside this block (no end
    /// can contain those uses). A prefix `start..end` is valid exactly
    /// when every non-zero-derived op in it has `need <= end`.
    fn need(&self, p: usize, d: StreamId, du: &DefUse) -> usize {
        let uses = self.use_pos.get(&d).map(Vec::as_slice).unwrap_or(&[]);
        if uses.len() < du.use_count(d) {
            return usize::MAX;
        }
        uses.last().map_or(p + 1, |&last| (last as usize + 1).max(p + 1))
    }
}

/// Finds the longest valid skippable range beginning right after
/// `block[head_idx]`, per the paper's validation rule: an instruction may
/// sit inside the skipped range even when it is *not* on the zero path,
/// as long as its result is not used outside the range; every result that
/// *is* used outside must be zero-derived from the head (and therefore
/// zero when the guard skips).
///
/// One forward scan: a running maximum of the bystanders' `need` makes
/// prefix validity an O(1) check per op, so the whole search is linear
/// where the previous implementation recounted uses per candidate end.
fn find_range(
    block: &[Op],
    head_idx: usize,
    du: &DefUse,
    index: &BlockIndex,
    visits: &mut u64,
) -> Option<ZeroRange> {
    let head = block[head_idx].dst();
    let mut zeroset: HashSet<StreamId> = HashSet::new();
    zeroset.insert(head);
    let start = head_idx + 1;
    let mut best = None;
    let mut max_need = 0usize;
    let mut e = start;
    while e < block.len() {
        let op = &block[e];
        *visits += 1;
        // Multi-def variables (loop accumulators) are excluded: skipping a
        // redefinition must not clobber or expose their previous-trip
        // value.
        if du.def_count(op.dst()) != 1 {
            break;
        }
        if preserves_zero(op, &zeroset) {
            zeroset.insert(op.dst());
        } else {
            max_need = max_need.max(index.need(e, op.dst(), du));
        }
        e += 1;
        if max_need <= e {
            best = Some(e);
        }
    }
    best.map(|end| ZeroRange { end, zeroset })
}

fn guard_block(block: Vec<Op>, config: &ZbsConfig, du: &DefUse, stats: &mut ZbsStats) -> Vec<Stmt> {
    let index = BlockIndex::build(&block);
    let mut out = Vec::new();
    let n = block.len();
    let mut i = 0;
    while i < n {
        let range = match find_range(&block, i, du, &index, &mut stats.visits) {
            Some(r) if r.end - (i + 1) >= config.min_range => r,
            _ => {
                out.push(Stmt::Op(block[i].clone()));
                i += 1;
                continue;
            }
        };
        let head = block[i].dst();
        let j = range.end;
        // Emit the head instruction, pre-zero the range's live-outs, then
        // guard the range. A live-out is exactly an op whose `need`
        // extends past the range end.
        out.push(Stmt::Op(block[i].clone()));
        for (p, op) in block.iter().enumerate().take(j).skip(i + 1) {
            stats.visits += 1;
            if index.need(p, op.dst(), du) > j {
                out.push(Stmt::Op(Op::Zero { dst: op.dst() }));
                stats.prezeros += 1;
            }
        }
        let body = subdivide(&block, i, j, range.zeroset, config, du, &index, stats);
        stats.guards += 1;
        stats.guarded_ops += j - (i + 1);
        out.push(Stmt::If { cond: head, body });
        i = j;
    }
    out
}

/// Interval-based multi-guard insertion (§6): within an already-guarded
/// range, insert a nested guard every `interval` instructions, conditioned
/// on the most recent zero-path value.
///
/// The original recursive version rebuilt the zero-derived set and
/// re-validated the candidate range from scratch at every nesting level
/// (O(range²) per level). This iterative version maintains the set
/// incrementally: each level's set is a subset of the previous one (the
/// new seed `cond` was itself a member), so members can only ever *drop*,
/// and each drop cascades through the use index, re-evaluating a reader
/// at most once per lost source. Validity reuses the `need` bound of
/// [`find_range`] through a lazily-pruned max-heap of bystander needs,
/// and pre-zero emission walks an ordered map of escaping members, so
/// every level's cost is proportional to what it emits plus what it
/// drops — near-linear overall.
#[allow(clippy::too_many_arguments)]
fn subdivide(
    block: &[Op],
    head_idx: usize,
    end: usize,
    zeroset: HashSet<StreamId>,
    config: &ZbsConfig,
    du: &DefUse,
    index: &BlockIndex,
    stats: &mut ZbsStats,
) -> Vec<Stmt> {
    let start = head_idx + 1;
    let flat = |a: usize, b: usize| block[a..b].iter().cloned().map(Stmt::Op);
    if config.interval == 0 {
        return flat(start, end).collect();
    }
    let mut zs = zeroset;
    // Member bookkeeping, all keyed by definition position (unique:
    // everything in a validated range is single-def).
    //   member_pos: def position -> member, for ordered set transitions;
    //   escapers:   members whose `need` exceeds the current range end
    //               (the pre-zero set), ordered by position;
    //   by_need:    members still contained in the current end, keyed by
    //               `need` so an end shrink migrates them to `escapers`;
    //   bystanders: max-heap of (need, pos) for non-members — the range
    //               validity bound, pruned lazily.
    let mut member_pos: BTreeMap<usize, StreamId> = BTreeMap::new();
    let mut escapers: BTreeMap<usize, StreamId> = BTreeMap::new();
    let mut by_need: BTreeMap<usize, Vec<(usize, StreamId)>> = BTreeMap::new();
    let mut bystanders: BinaryHeap<(usize, usize)> = BinaryHeap::new();
    member_pos.insert(head_idx, block[head_idx].dst());
    for (p, op) in block.iter().enumerate().take(end).skip(start) {
        stats.visits += 1;
        let d = op.dst();
        let need = index.need(p, d, du);
        if zs.contains(&d) {
            member_pos.insert(p, d);
            if need > end {
                escapers.insert(p, d);
            } else {
                by_need.entry(need).or_default().push((p, d));
            }
        } else {
            bystanders.push((need, p));
        }
    }
    // One entry per nesting level already decided: the statements before
    // its `if`, the guard condition, and the ops after its range.
    let mut pending: Vec<(Vec<Stmt>, StreamId, Vec<Stmt>)> = Vec::new();
    let mut body: Vec<Stmt> = Vec::new();
    let (mut a, mut b) = (start, end);
    loop {
        // "Every I instructions along a zero path": count only path nodes
        // (zero-derived results), not bystanders, and stop subdividing
        // when no full interval plus a continuation remains.
        let mut c = None;
        let mut path_nodes = 0usize;
        let mut more = false;
        for (p, op) in block.iter().enumerate().take(b).skip(a) {
            stats.visits += 1;
            if !zs.contains(&op.dst()) {
                continue;
            }
            path_nodes += 1;
            if path_nodes == config.interval + 1 {
                more = true;
                break;
            }
            if path_nodes == config.interval {
                c = Some(p + 1);
            }
        }
        let (Some(c), true) = (c, more) else {
            body.extend(flat(a, b));
            break;
        };
        let cond = block[c - 1].dst();
        body.extend(flat(a, c));
        // Set transition S -> S': the nested guard re-derives zeroness
        // from `cond` alone, so every member defined before the split
        // (except `cond` itself) leaves the set, and each removal
        // cascades through its readers.
        let mut dropped: Vec<StreamId> = Vec::new();
        let expired: Vec<usize> =
            member_pos.range(..c).map(|(&p, _)| p).filter(|&p| p != c - 1).collect();
        for p in expired {
            let d = member_pos.remove(&p).expect("member indexed at its def position");
            zs.remove(&d);
            if p >= start && escapers.remove(&p).is_none() {
                let need = index.need(p, d, du);
                if let Some(v) = by_need.get_mut(&need) {
                    v.retain(|&(q, _)| q != p);
                }
            }
            dropped.push(d);
        }
        while let Some(v) = dropped.pop() {
            for &q in index.use_pos.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let q = q as usize;
                if q < c || q >= b {
                    continue;
                }
                stats.visits += 1;
                let op = &block[q];
                let d = op.dst();
                if !zs.contains(&d) || preserves_zero(op, &zs) {
                    continue;
                }
                zs.remove(&d);
                member_pos.remove(&q);
                let need = index.need(q, d, du);
                if escapers.remove(&q).is_none() {
                    if let Some(v) = by_need.get_mut(&need) {
                        v.retain(|&(r, _)| r != q);
                    }
                }
                bystanders.push((need, q));
                dropped.push(d);
            }
        }
        // Range end for this level: the full tail if every bystander's
        // need is contained (the common case, O(1) via the heap top),
        // otherwise the longest valid prefix by forward scan.
        while let Some(&(_, p)) = bystanders.peek() {
            if p < c || p >= b {
                bystanders.pop();
            } else {
                break;
            }
        }
        let whole_ok = bystanders.peek().is_none_or(|&(need, _)| need <= b);
        let e = if whole_ok && b - c >= config.min_range {
            Some(b)
        } else if whole_ok {
            None
        } else {
            let mut max_need = 0usize;
            let mut found = None;
            for (p, op) in block.iter().enumerate().take(b).skip(c) {
                stats.visits += 1;
                let d = op.dst();
                if !zs.contains(&d) {
                    max_need = max_need.max(index.need(p, d, du));
                }
                if max_need <= p + 1 && p + 1 - c >= config.min_range {
                    found = Some(p + 1);
                }
            }
            found
        };
        let Some(e) = e else {
            // No nested range pays for a guard: emit the rest flat.
            body.extend(flat(c, b));
            break;
        };
        if e < b {
            // The end shrank: members reaching into (e, b] now escape,
            // and everything defined at or past `e` leaves the level.
            escapers.split_off(&e);
            for (_, moved) in by_need.split_off(&(e + 1)) {
                for (p, d) in moved {
                    if p < e {
                        escapers.insert(p, d);
                    }
                }
            }
        }
        // Pre-zero the nested range's live-outs (order: by position).
        let prezeros: Vec<Stmt> = escapers
            .range(c..e)
            .map(|(_, &d)| Stmt::Op(Op::Zero { dst: d }))
            .collect();
        stats.prezeros += prezeros.len();
        body.extend(prezeros);
        stats.guards += 1;
        pending.push((std::mem::take(&mut body), cond, flat(e, b).collect()));
        a = c;
        b = e;
    }
    while let Some((mut outer, cond, tail)) = pending.pop() {
        outer.push(Stmt::If { cond, body: std::mem::take(&mut body) });
        outer.extend(tail);
        body = outer;
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_bitstream::Basis;
    use bitgen_ir::{interpret, lower, pretty};
    use bitgen_regex::parse;

    fn zbs(pattern: &str, interval: usize) -> Program {
        let mut prog = lower(&parse(pattern).unwrap());
        insert_zero_skips(&mut prog, ZbsConfig { interval, min_range: 2 });
        prog
    }

    fn assert_preserves(pattern: &str, input: &[u8], interval: usize) {
        let prog = lower(&parse(pattern).unwrap());
        let guarded = zbs(pattern, interval);
        let basis = Basis::transpose(input);
        let before = interpret(&prog, &basis);
        let after = interpret(&guarded, &basis);
        for (x, y) in before.outputs.iter().zip(&after.outputs) {
            assert_eq!(
                x.positions(),
                y.positions(),
                "pattern {pattern:?} interval {interval}\n{}",
                pretty(&guarded)
            );
        }
    }

    #[test]
    fn guards_inserted_on_literal_chain() {
        let prog = zbs("abcdefgh", 8);
        let stats_prog = {
            let mut p = lower(&parse("abcdefgh").unwrap());
            insert_zero_skips(&mut p, ZbsConfig::default())
        };
        assert!(stats_prog.guards >= 1, "{}", pretty(&prog));
        let s = bitgen_ir::ProgramStats::of(&prog);
        assert!(s.r#if >= 1);
    }

    #[test]
    fn semantics_preserved_across_intervals() {
        for interval in [1, 2, 4, 8] {
            for (pat, input) in [
                ("abcdefgh", &b"xxabcdefghxx"[..]),
                ("abcd", b"no match here"),
                ("a(bc)*d", b"abcbcd none ad"),
                ("(ab|cd)ef", b"abef cdef xxef"),
                ("a{4}", b"aaaaaa"),
            ] {
                assert_preserves(pat, input, interval);
            }
        }
    }

    #[test]
    fn skipped_ranges_behave_as_zero() {
        // Input with no 'a' at all: every guard fires (skips), and the
        // output must still be exactly empty, not stale garbage.
        assert_preserves("abcdefgh", b"zzzzzzzzzzzz", 8);
        let prog = zbs("abcdefgh", 8);
        let r = interpret(&prog, &Basis::transpose(b"zzzzzzzzzzzz"));
        assert!(r.outputs[0].positions().is_empty());
    }

    #[test]
    fn interval_one_nests_guards() {
        let mut p = lower(&parse("abcdefghij").unwrap());
        let fine = insert_zero_skips(&mut p, ZbsConfig { interval: 1, min_range: 2 });
        let mut q = lower(&parse("abcdefghij").unwrap());
        let coarse = insert_zero_skips(&mut q, ZbsConfig { interval: 8, min_range: 2 });
        assert!(
            fine.guards > coarse.guards,
            "interval 1 should insert more guards: {fine:?} vs {coarse:?}"
        );
    }

    #[test]
    fn live_outs_are_prezeroed() {
        let mut p = lower(&parse("abcd|x").unwrap());
        let stats = insert_zero_skips(&mut p, ZbsConfig::default());
        if stats.guards > 0 {
            assert!(stats.prezeros > 0, "guarded values used later need pre-zeroing");
        }
        assert_preserves("abcd|x", b"qqqq x abcd", 8);
    }

    #[test]
    fn not_breaks_zero_paths() {
        // ~0 = all ones: NOT must never sit inside a guarded range.
        assert_preserves("a(bc)*d", b"zzzzz", 4);
        let prog = zbs("a(bc)*d", 4);
        fn check(stmts: &[Stmt]) {
            for s in stmts {
                match s {
                    Stmt::If { body, .. } => {
                        for b in body {
                            if let Stmt::Op(op) = b {
                                assert!(
                                    !matches!(op, Op::Not { .. } | Op::Ones { .. }),
                                    "non-zero-preserving op inside guard"
                                );
                            }
                        }
                        check(body);
                    }
                    Stmt::While { body, .. } => check(body),
                    Stmt::Op(_) => {}
                }
            }
        }
        check(prog.stmts());
    }

    #[test]
    fn guards_inside_while_bodies() {
        // The Kleene loop body contains shift/AND chains: guards may be
        // inserted there too, and the loop must still terminate.
        assert_preserves("a(bcde)*f", b"abcdebcdef", 2);
    }

    // ------------------------------------------------------------------
    // find_range edge cases. These pin the validation semantics of the
    // original (quadratic) implementation; the linear rewrite must keep
    // them passing unchanged.
    // ------------------------------------------------------------------

    use bitgen_ir::ProgramBuilder;
    use bitgen_regex::ByteSet;

    fn block_of(prog: &Program) -> Vec<Op> {
        prog.stmts()
            .iter()
            .map(|s| match s {
                Stmt::Op(op) => op.clone(),
                _ => panic!("straight-line programs only"),
            })
            .collect()
    }

    fn range_of(prog: &Program, head_idx: usize) -> Option<(usize, HashSet<StreamId>)> {
        let du = DefUse::of(prog);
        let block = block_of(prog);
        let index = BlockIndex::build(&block);
        let mut visits = 0u64;
        find_range(&block, head_idx, &du, &index, &mut visits).map(|r| (r.end, r.zeroset))
    }

    #[test]
    fn find_range_stops_at_multi_def_accumulator() {
        // Skipping a redefinition of a loop accumulator would clobber (or
        // expose) its previous-trip value: the range must end before it.
        let mut b = ProgramBuilder::new();
        let c = b.match_cc(ByteSet::singleton(b'a')); // 0: head
        let t1 = b.advance(c, 1); // 1: zero-derived
        let t2 = b.and(t1, c); // 2: zero-derived
        let acc = b.assign_new(t2); // 3: acc def #1
        let t3 = b.advance(acc, 1); // 4
        b.assign_to(acc, t3); // 5: acc def #2 — multi-def
        b.mark_output(acc);
        let prog = b.finish();
        let (end, zeroset) = range_of(&prog, 0).expect("range before the accumulator");
        assert_eq!(end, 3, "range must stop at the first multi-def dst");
        assert!(zeroset.contains(&t1) && zeroset.contains(&t2));
        assert!(!zeroset.contains(&acc));
    }

    #[test]
    fn find_range_rejects_escaping_bystander() {
        // A non-zero-derived result read after the range cannot be
        // skipped: zeroing it would be observable.
        let mut b = ProgramBuilder::new();
        let c = b.match_cc(ByteSet::singleton(b'a')); // 0: head
        let d = b.match_cc(ByteSet::singleton(b'b')); // 1: bystander
        b.mark_output(c);
        b.mark_output(d); // d escapes every candidate range
        let prog = b.finish();
        assert!(range_of(&prog, 0).is_none());
    }

    #[test]
    fn find_range_allows_bystander_used_inside() {
        // A bystander whose every use sits inside the range is fine: its
        // (stale or never-computed) value is unobservable outside.
        let mut b = ProgramBuilder::new();
        let c = b.match_cc(ByteSet::singleton(b'a')); // 0: head
        let d = b.match_cc(ByteSet::singleton(b'b')); // 1: bystander
        let e = b.and(c, d); // 2: zero-derived, consumes d
        b.mark_output(e);
        let prog = b.finish();
        let (end, zeroset) = range_of(&prog, 0).expect("bystander is containable");
        assert_eq!(end, 3);
        assert!(zeroset.contains(&e));
        assert!(!zeroset.contains(&d), "bystanders are not zero-derived");
    }

    #[test]
    fn find_range_head_at_block_end() {
        // Nothing follows the head: no range.
        let mut b = ProgramBuilder::new();
        let c = b.match_cc(ByteSet::singleton(b'a'));
        b.mark_output(c);
        let prog = b.finish();
        assert!(range_of(&prog, 0).is_none());
    }

    #[test]
    fn min_range_rejects_short_ranges() {
        // A 1-op range is valid but not worth a guard under min_range 2.
        let short = || {
            let mut b = ProgramBuilder::new();
            let c = b.match_cc(ByteSet::singleton(b'a'));
            let t = b.advance(c, 1);
            b.mark_output(t);
            b.finish()
        };
        let mut p = short();
        let rejected = insert_zero_skips(&mut p, ZbsConfig { interval: 8, min_range: 2 });
        assert_eq!(rejected.guards, 0, "below min_range: no guard");
        let mut q = short();
        let accepted = insert_zero_skips(&mut q, ZbsConfig { interval: 8, min_range: 1 });
        assert_eq!(accepted.guards, 1);
        assert_eq!(accepted.guarded_ops, 1);
        assert_eq!(accepted.prezeros, 1, "the live-out advance is pre-zeroed");
    }
}

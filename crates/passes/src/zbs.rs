//! Zero Block Skipping (§6 of the paper).
//!
//! Intermediate bitstreams are mostly zero in practice (partial regex
//! mismatches). Operations that *preserve zero* — AND, the shifts, and
//! plain copies — propagate an all-zero block unchanged, so a run of such
//! instructions can be skipped whenever its head value has no set bit in
//! the current block.
//!
//! The pass finds, for every candidate head `v`, the maximal following run
//! of instructions whose results are all zero-guaranteed given `v == 0`
//! (the paper's *zero path*, generalised to a zero-derived set), and wraps
//! the run in an `if (v)` guard. Where the paper validates a `goto` by
//! rejecting ranges that define values used outside the path, this pass
//! admits only zero-derived instructions into the range — the same
//! criterion — and additionally pre-zeroes every range result that is live
//! after the range, so a skipped range behaves exactly as if it had been
//! executed on zeros. The `interval` parameter reproduces the paper's
//! interval-based multi-guard insertion: inside a guarded range, additional
//! guards are attempted every `interval` instructions.

use bitgen_ir::{DefUse, Op, Program, Stmt, StreamId};
use std::collections::HashSet;

/// Configuration of the zero-block-skipping pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZbsConfig {
    /// Distance (in zero-path instructions) between successive guard
    /// attempts along one path — the paper's *interval size* (Fig. 14
    /// sweeps 1, 2, 4, 8).
    pub interval: usize,
    /// Minimum number of skippable instructions for a guard to pay for its
    /// block-wide reduction.
    pub min_range: usize,
}

impl Default for ZbsConfig {
    fn default() -> ZbsConfig {
        // The paper's default interval size is 8.
        ZbsConfig { interval: 8, min_range: 2 }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZbsStats {
    /// Guards inserted.
    pub guards: usize,
    /// Instructions now under some guard.
    pub guarded_ops: usize,
    /// Pre-zero initialisations added for range live-outs.
    pub prezeros: usize,
}

/// Applies zero-block skipping to `program` in place.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::lower;
/// use bitgen_passes::{insert_zero_skips, ZbsConfig};
///
/// let mut prog = lower(&parse("abcdefgh").unwrap());
/// let stats = insert_zero_skips(&mut prog, ZbsConfig::default());
/// assert!(stats.guards >= 1);
/// ```
pub fn insert_zero_skips(program: &mut Program, config: ZbsConfig) -> ZbsStats {
    let mut stats = ZbsStats::default();
    let du = DefUse::of(program);
    let mut stmts = std::mem::take(program.stmts_mut());
    guard_stmts(&mut stmts, &config, &du, &mut stats);
    *program.stmts_mut() = stmts;
    stats
}

fn guard_stmts(stmts: &mut Vec<Stmt>, config: &ZbsConfig, du: &DefUse, stats: &mut ZbsStats) {
    let old = std::mem::take(stmts);
    let mut run: Vec<Op> = Vec::new();
    for stmt in old {
        match stmt {
            Stmt::Op(op) => run.push(op),
            mut ctl => {
                flush(&mut run, stmts, config, du, stats);
                match &mut ctl {
                    Stmt::If { body, .. } | Stmt::While { body, .. } => {
                        guard_stmts(body, config, du, stats);
                    }
                    Stmt::Op(_) => unreachable!("ops are buffered above"),
                }
                stmts.push(ctl);
            }
        }
    }
    flush(&mut run, stmts, config, du, stats);
}

fn flush(run: &mut Vec<Op>, out: &mut Vec<Stmt>, config: &ZbsConfig, du: &DefUse, stats: &mut ZbsStats) {
    if run.is_empty() {
        return;
    }
    let block = std::mem::take(run);
    out.extend(guard_block(block, config, du, stats));
}

/// Zero-preservation: with `head == 0`, does `op` produce zero given that
/// everything in `zeroset` is zero?
fn preserves_zero(op: &Op, zeroset: &HashSet<StreamId>) -> bool {
    match op {
        // AND is zero whenever either operand is zero.
        Op::And { a, b, .. } => zeroset.contains(a) || zeroset.contains(b),
        // Shifts and copies of zero are zero.
        Op::Advance { src, .. } | Op::Retreat { src, .. } | Op::Assign { src, .. } => {
            zeroset.contains(src)
        }
        // OR/XOR/ADD of two zeros is zero (both must be derived).
        Op::Or { a, b, .. } | Op::Xor { a, b, .. } | Op::Add { a, b, .. } => {
            zeroset.contains(a) && zeroset.contains(b)
        }
        // NOT of zero is all-ones; constants and matches are independent.
        Op::Not { .. } | Op::MatchCc { .. } | Op::Zero { .. } | Op::Ones { .. } => false,
    }
}

/// A validated skippable range: the ops after a head instruction that may
/// all be skipped when the head value is zero.
struct ZeroRange {
    /// Exclusive end index of the range (the range is `start..end`).
    end: usize,
    /// Variables in the range guaranteed zero when the head is zero.
    zeroset: HashSet<StreamId>,
}

/// Finds the longest valid skippable range beginning right after
/// `block[head_idx]`, per the paper's validation rule: an instruction may
/// sit inside the skipped range even when it is *not* on the zero path,
/// as long as its result is not used outside the range; every result that
/// *is* used outside must be zero-derived from the head (and therefore
/// zero when the guard skips).
fn find_range(block: &[Op], head_idx: usize, du: &DefUse) -> Option<ZeroRange> {
    let head = block[head_idx].dst();
    let mut zeroset: HashSet<StreamId> = HashSet::new();
    zeroset.insert(head);
    // Grow phase: include zero-derived ops and single-def "bystander" ops.
    let mut grown = head_idx + 1;
    while grown < block.len() {
        let op = &block[grown];
        // Multi-def variables (loop accumulators) are excluded: skipping a
        // redefinition must not clobber or expose their previous-trip
        // value.
        if du.def_count(op.dst()) != 1 {
            break;
        }
        if preserves_zero(op, &zeroset) {
            zeroset.insert(op.dst());
        }
        grown += 1;
    }
    // Shrink phase: find the longest prefix whose escaping definitions are
    // all in the zeroset.
    let start = head_idx + 1;
    let mut end = grown;
    while end > start {
        let range = &block[start..end];
        let valid = range.iter().all(|op| {
            let d = op.dst();
            if zeroset.contains(&d) {
                return true;
            }
            let uses_inside: usize = range
                .iter()
                .map(|o| o.sources().iter().filter(|&&s| s == d).count())
                .sum();
            du.use_count(d) <= uses_inside
        });
        if valid {
            return Some(ZeroRange { end, zeroset });
        }
        end -= 1;
    }
    None
}

fn guard_block(block: Vec<Op>, config: &ZbsConfig, du: &DefUse, stats: &mut ZbsStats) -> Vec<Stmt> {
    let mut out = Vec::new();
    let n = block.len();
    let mut i = 0;
    while i < n {
        let range = match find_range(&block, i, du) {
            Some(r) if r.end - (i + 1) >= config.min_range => r,
            _ => {
                out.push(Stmt::Op(block[i].clone()));
                i += 1;
                continue;
            }
        };
        let head = block[i].dst();
        let j = range.end;
        // Emit the head instruction, pre-zero the range's live-outs, then
        // guard the range.
        out.push(Stmt::Op(block[i].clone()));
        let ops = &block[i + 1..j];
        for op in ops {
            let d = op.dst();
            let uses_inside: usize = ops
                .iter()
                .map(|o| o.sources().iter().filter(|&&s| s == d).count())
                .sum();
            if du.use_count(d) > uses_inside {
                out.push(Stmt::Op(Op::Zero { dst: d }));
                stats.prezeros += 1;
            }
        }
        let body = subdivide(ops.to_vec(), &range.zeroset, config, du, stats);
        stats.guards += 1;
        stats.guarded_ops += j - (i + 1);
        out.push(Stmt::If { cond: head, body });
        i = j;
    }
    out
}

/// Interval-based multi-guard insertion (§6): within an already-guarded
/// range, insert a nested guard every `interval` instructions, conditioned
/// on the most recent zero-path value.
fn subdivide(
    range: Vec<Op>,
    zeroset: &HashSet<StreamId>,
    config: &ZbsConfig,
    du: &DefUse,
    stats: &mut ZbsStats,
) -> Vec<Stmt> {
    if config.interval == 0 {
        return range.into_iter().map(Stmt::Op).collect();
    }
    // "Every I instructions along a zero path": count only path nodes
    // (zero-derived results), not bystanders.
    let path_positions: Vec<usize> = range
        .iter()
        .enumerate()
        .filter(|(_, op)| zeroset.contains(&op.dst()))
        .map(|(i, _)| i)
        .collect();
    if path_positions.len() <= config.interval {
        return range.into_iter().map(Stmt::Op).collect();
    }
    let split = path_positions[config.interval - 1] + 1;
    let mut out: Vec<Stmt> = Vec::new();
    let (first, rest) = range.split_at(split);
    out.extend(first.iter().cloned().map(Stmt::Op));
    let cond = range[split - 1].dst();
    // Re-validate the tail as a range guarded by `cond`: rebuild the
    // zero-derived set from the split point.
    let mut inner_zero: HashSet<StreamId> = HashSet::new();
    inner_zero.insert(cond);
    let mut k = 0;
    while k < rest.len() {
        if preserves_zero(&rest[k], &inner_zero) {
            inner_zero.insert(rest[k].dst());
        }
        k += 1;
    }
    // Shrink for validity (escaping defs must be zero-derived from cond).
    let mut end = rest.len();
    while end >= config.min_range {
        let cand = &rest[..end];
        let tail = &rest[end..];
        let valid = cand.iter().all(|op| {
            let d = op.dst();
            if inner_zero.contains(&d) {
                return true;
            }
            let inside: usize = cand
                .iter()
                .map(|o| o.sources().iter().filter(|&&s| s == d).count())
                .sum();
            let in_tail: usize = tail
                .iter()
                .map(|o| o.sources().iter().filter(|&&s| s == d).count())
                .sum();
            // Uses in the tail are still inside the *outer* guard but
            // outside this nested one.
            du.use_count(d) <= inside && in_tail == 0
        });
        if valid {
            break;
        }
        end -= 1;
    }
    if end < config.min_range {
        out.extend(rest.iter().cloned().map(Stmt::Op));
        return out;
    }
    let (inner, tail) = rest.split_at(end);
    // Results of the nested body that are read in the tail or beyond must
    // read as zero when the nested guard skips — pre-zero exactly those
    // live-outs (pre-zeroing everything would cost as much as the skip
    // saves).
    for op in inner {
        let d = op.dst();
        if !inner_zero.contains(&d) {
            continue;
        }
        let uses_inside: usize = inner
            .iter()
            .map(|o| o.sources().iter().filter(|&&s| s == d).count())
            .sum();
        if du.use_count(d) > uses_inside {
            out.push(Stmt::Op(Op::Zero { dst: d }));
            stats.prezeros += 1;
        }
    }
    stats.guards += 1;
    let body = subdivide(inner.to_vec(), &inner_zero, config, du, stats);
    out.push(Stmt::If { cond, body });
    out.extend(tail.iter().cloned().map(Stmt::Op));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_bitstream::Basis;
    use bitgen_ir::{interpret, lower, pretty};
    use bitgen_regex::parse;

    fn zbs(pattern: &str, interval: usize) -> Program {
        let mut prog = lower(&parse(pattern).unwrap());
        insert_zero_skips(&mut prog, ZbsConfig { interval, min_range: 2 });
        prog
    }

    fn assert_preserves(pattern: &str, input: &[u8], interval: usize) {
        let prog = lower(&parse(pattern).unwrap());
        let guarded = zbs(pattern, interval);
        let basis = Basis::transpose(input);
        let before = interpret(&prog, &basis);
        let after = interpret(&guarded, &basis);
        for (x, y) in before.outputs.iter().zip(&after.outputs) {
            assert_eq!(
                x.positions(),
                y.positions(),
                "pattern {pattern:?} interval {interval}\n{}",
                pretty(&guarded)
            );
        }
    }

    #[test]
    fn guards_inserted_on_literal_chain() {
        let prog = zbs("abcdefgh", 8);
        let stats_prog = {
            let mut p = lower(&parse("abcdefgh").unwrap());
            insert_zero_skips(&mut p, ZbsConfig::default())
        };
        assert!(stats_prog.guards >= 1, "{}", pretty(&prog));
        let s = bitgen_ir::ProgramStats::of(&prog);
        assert!(s.r#if >= 1);
    }

    #[test]
    fn semantics_preserved_across_intervals() {
        for interval in [1, 2, 4, 8] {
            for (pat, input) in [
                ("abcdefgh", &b"xxabcdefghxx"[..]),
                ("abcd", b"no match here"),
                ("a(bc)*d", b"abcbcd none ad"),
                ("(ab|cd)ef", b"abef cdef xxef"),
                ("a{4}", b"aaaaaa"),
            ] {
                assert_preserves(pat, input, interval);
            }
        }
    }

    #[test]
    fn skipped_ranges_behave_as_zero() {
        // Input with no 'a' at all: every guard fires (skips), and the
        // output must still be exactly empty, not stale garbage.
        assert_preserves("abcdefgh", b"zzzzzzzzzzzz", 8);
        let prog = zbs("abcdefgh", 8);
        let r = interpret(&prog, &Basis::transpose(b"zzzzzzzzzzzz"));
        assert!(r.outputs[0].positions().is_empty());
    }

    #[test]
    fn interval_one_nests_guards() {
        let mut p = lower(&parse("abcdefghij").unwrap());
        let fine = insert_zero_skips(&mut p, ZbsConfig { interval: 1, min_range: 2 });
        let mut q = lower(&parse("abcdefghij").unwrap());
        let coarse = insert_zero_skips(&mut q, ZbsConfig { interval: 8, min_range: 2 });
        assert!(
            fine.guards > coarse.guards,
            "interval 1 should insert more guards: {fine:?} vs {coarse:?}"
        );
    }

    #[test]
    fn live_outs_are_prezeroed() {
        let mut p = lower(&parse("abcd|x").unwrap());
        let stats = insert_zero_skips(&mut p, ZbsConfig::default());
        if stats.guards > 0 {
            assert!(stats.prezeros > 0, "guarded values used later need pre-zeroing");
        }
        assert_preserves("abcd|x", b"qqqq x abcd", 8);
    }

    #[test]
    fn not_breaks_zero_paths() {
        // ~0 = all ones: NOT must never sit inside a guarded range.
        assert_preserves("a(bc)*d", b"zzzzz", 4);
        let prog = zbs("a(bc)*d", 4);
        fn check(stmts: &[Stmt]) {
            for s in stmts {
                match s {
                    Stmt::If { body, .. } => {
                        for b in body {
                            if let Stmt::Op(op) = b {
                                assert!(
                                    !matches!(op, Op::Not { .. } | Op::Ones { .. }),
                                    "non-zero-preserving op inside guard"
                                );
                            }
                        }
                        check(body);
                    }
                    Stmt::While { body, .. } => check(body),
                    Stmt::Op(_) => {}
                }
            }
        }
        check(prog.stmts());
    }

    #[test]
    fn guards_inside_while_bodies() {
        // The Kleene loop body contains shift/AND chains: guards may be
        // inserted there too, and the loop must still terminate.
        assert_preserves("a(bcde)*f", b"abcdebcdef", 2);
    }
}

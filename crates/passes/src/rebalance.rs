//! Shift Rebalancing (§5.2 of the paper).
//!
//! Long chains of `SHIFT`+`AND` (the lowering of concatenation) serialise
//! interleaved execution: every shift needs two barriers and each one waits
//! on the previous AND. Operand rewriting moves shifts off the critical
//! path using the identity
//!
//! ```text
//! (A >> n) & B  ≡  (A & (B << n)) >> n
//! ```
//!
//! (exact on finite streams for AND: positions that fall off an edge are
//! zero on both sides). The pass walks every straight-line run of
//! instructions, repeatedly rewriting ANDs whose shifted operand sits at
//! least as deep in the dataflow as the other operand, then merging the
//! same-direction shift chains the rewrite creates (`(x >> a) >> b` →
//! `x >> (a+b)`). The result is the balanced, schedulable DFG of Fig. 8;
//! barrier scheduling and merging happen later, at kernel generation.
//!
//! OR is *not* rewritten: `(A >> n) | B ≠ ((A | (B << n)) >> n)` near
//! stream boundaries, so the identity only holds for the unbounded streams
//! of the paper's algebra, not for stored finite ones.

use bitgen_ir::{DefUse, Op, Program, Stmt, StreamId};
use std::collections::HashMap;

/// What the rebalancing pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Operand rewrites applied (`(A>>n)&B` → `(A&(B<<n))>>n` and the
    /// mirrored retreat form).
    pub rewrites: usize,
    /// Same-direction shift pairs merged into one instruction.
    pub merges: usize,
    /// Fixpoint iterations taken.
    pub iterations: usize,
    /// Instructions examined across all sweeps — the pass's work
    /// counter, asserted near-linear by the complexity suite.
    pub visits: u64,
}

/// Iteration cap; real programs converge in a handful of passes.
const MAX_ITERATIONS: usize = 32;

/// Applies shift rebalancing to `program` in place.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::lower;
/// use bitgen_passes::rebalance;
///
/// let mut prog = lower(&parse("abb").unwrap());
/// let stats = rebalance(&mut prog);
/// assert!(stats.rewrites >= 2); // the Fig. 8 example
/// ```
pub fn rebalance(program: &mut Program) -> RebalanceStats {
    let mut du = DefUse::of(program);
    rebalance_with(program, &mut du)
}

/// [`rebalance`] with a caller-provided def/use cache.
///
/// `du` must describe `program` on entry; on return it describes the
/// rebalanced program — the pass maintains it incrementally instead of
/// recomputing the analysis every fixpoint iteration, so a pipeline can
/// hand the same cache to the next pass.
pub fn rebalance_with(program: &mut Program, du: &mut DefUse) -> RebalanceStats {
    let mut stats = RebalanceStats::default();
    for _ in 0..MAX_ITERATIONS {
        stats.iterations += 1;
        // Rewrites within one iteration consult the iteration-start
        // snapshot (fresh temporaries deliberately look non-linear until
        // the next iteration — that is what staggers rewrite vs merge),
        // while the live cache absorbs every op added or removed.
        let snapshot = du.clone();
        let mut changed = false;
        let mut fresh = Fresh { program_next: program.num_streams() };
        let mut stmts = std::mem::take(program.stmts_mut());
        rewrite_stmts(&mut stmts, &snapshot, du, &mut fresh, &mut stats, &mut changed);
        *program.stmts_mut() = stmts;
        while program.num_streams() < fresh.program_next {
            program.fresh_stream();
        }
        if !changed {
            break;
        }
    }
    stats
}

struct Fresh {
    program_next: u32,
}

impl Fresh {
    fn next(&mut self) -> StreamId {
        let id = StreamId(self.program_next);
        self.program_next += 1;
        id
    }
}

fn rewrite_stmts(
    stmts: &mut Vec<Stmt>,
    du: &DefUse,
    live: &mut DefUse,
    fresh: &mut Fresh,
    stats: &mut RebalanceStats,
    changed: &mut bool,
) {
    // Transform each maximal run of plain instructions, recursing into
    // `if` bodies. `while` bodies are left untouched: a rewrite there adds
    // one shift *per trip* on the critical path, and the loop-carried
    // dependency prevents the added shift from ever sharing a barrier —
    // rebalancing only pays off on straight-line concatenation chains.
    let old = std::mem::take(stmts);
    let mut run: Vec<Op> = Vec::new();
    for stmt in old {
        match stmt {
            Stmt::Op(op) => run.push(op),
            mut ctl => {
                flush_run(&mut run, stmts, du, live, fresh, stats, changed);
                if let Stmt::If { body, .. } = &mut ctl {
                    rewrite_stmts(body, du, live, fresh, stats, changed);
                }
                stmts.push(ctl);
            }
        }
    }
    flush_run(&mut run, stmts, du, live, fresh, stats, changed);
}

#[allow(clippy::too_many_arguments)]
fn flush_run(
    run: &mut Vec<Op>,
    out: &mut Vec<Stmt>,
    du: &DefUse,
    live: &mut DefUse,
    fresh: &mut Fresh,
    stats: &mut RebalanceStats,
    changed: &mut bool,
) {
    if run.is_empty() {
        return;
    }
    let mut block = std::mem::take(run);
    if rewrite_block(&mut block, du, live, fresh, stats) {
        *changed = true;
    }
    if merge_shifts(&mut block, du, live, stats) {
        *changed = true;
    }
    out.extend(block.into_iter().map(Stmt::Op));
}

/// An emitted block under construction. Rewrites remove an *earlier*
/// instruction (the folded shift), so emitted slots are tombstoned in
/// place rather than shifted: indices stay stable and the def/depth maps
/// never need rebuilding — the rescans that made this pass quadratic.
struct Emitted {
    slots: Vec<Option<Op>>,
    /// Defining slot of each id defined so far (dead ids are evicted when
    /// their slot is tombstoned).
    def_pos: HashMap<StreamId, usize>,
    /// Topological depth per emitted slot: `1 + max(depth of in-block
    /// source definitions)`; sources defined outside the block count 0.
    depth: Vec<usize>,
}

impl Emitted {
    fn with_capacity(n: usize) -> Emitted {
        Emitted { slots: Vec::with_capacity(n), def_pos: HashMap::new(), depth: Vec::new() }
    }

    fn push(&mut self, op: Op) {
        let mut d = 0;
        for s in op.sources() {
            if let Some(&j) = self.def_pos.get(&s) {
                d = d.max(self.depth[j] + 1);
            }
        }
        self.def_pos.insert(op.dst(), self.slots.len());
        self.depth.push(d);
        self.slots.push(Some(op));
    }

    fn remove(&mut self, j: usize) -> Op {
        let op = self.slots[j].take().expect("tombstoning a live slot");
        self.def_pos.remove(&op.dst());
        op
    }

    fn var_depth(&self, v: StreamId) -> usize {
        self.def_pos.get(&v).map_or(0, |&p| self.depth[p] + 1)
    }

    fn finish(self) -> Vec<Op> {
        self.slots.into_iter().flatten().collect()
    }
}

/// One rewriting sweep over a straight-line block, to fixpoint. Returns
/// `true` if any rewrite fired.
///
/// A single forward pass is the fixpoint: a rewrite only changes the
/// instruction it replaces and removes a shift whose sole use was that
/// instruction, so no instruction before the rewrite can newly match —
/// only the replacement AND needs re-examination, which happens
/// naturally as it is emitted through the same worklist.
fn rewrite_block(
    block: &mut Vec<Op>,
    du: &DefUse,
    live: &mut DefUse,
    fresh: &mut Fresh,
    stats: &mut RebalanceStats,
) -> bool {
    let mut changed = false;
    let mut out = Emitted::with_capacity(block.len());
    let mut pending: Vec<Op> = Vec::new();
    for op in block.drain(..) {
        pending.push(op);
        while let Some(op) = pending.pop() {
            stats.visits += 1;
            let Some(rw) = find_rewrite(&op, du, &out) else {
                out.push(op);
                continue;
            };
            // Replace `sh = x >> n; ...; dst = sh & b` with
            // `...; t = b << n; u = x & t; dst = u >> n`.
            let shift = out.remove(rw.shift_pos);
            live.note_op_removed(&shift);
            live.note_op_removed(&op);
            let t = fresh.next();
            let u = fresh.next();
            let seq = [
                Op::Retreat { dst: t, src: rw.b, amount: rw.amount },
                Op::And { dst: u, a: rw.x, b: t },
                Op::Advance { dst: rw.dst, src: u, amount: rw.amount },
            ];
            for new_op in &seq {
                live.note_op_added(new_op);
            }
            // Re-examine in order: the new AND may itself be rewritable.
            pending.extend(seq.into_iter().rev());
            stats.rewrites += 1;
            changed = true;
        }
    }
    *block = out.finish();
    changed
}

/// A planned rewrite of an AND whose operand at emitted slot `shift_pos`
/// (an `Advance`) is pushed below the AND.
struct Rewrite {
    shift_pos: usize,
    /// Source of the shift (the paper's `A`).
    x: StreamId,
    /// The other AND operand (the paper's `B`).
    b: StreamId,
    amount: u32,
    dst: StreamId,
}

fn find_rewrite(op: &Op, du: &DefUse, out: &Emitted) -> Option<Rewrite> {
    let &Op::And { dst, a, b } = op else { return None };
    // Try each operand as the shifted one; prefer the deeper.
    let mut candidates: Vec<(StreamId, StreamId)> = vec![(a, b), (b, a)];
    candidates.sort_by_key(|&(sh, _)| {
        std::cmp::Reverse(out.def_pos.get(&sh).map_or(0, |&p| out.depth[p]))
    });
    for (sh_operand, other) in candidates {
        let Some(&j) = out.def_pos.get(&sh_operand) else { continue };
        let Some(Op::Advance { src: x, amount, dst: sdst }) = out.slots[j] else { continue };
        debug_assert_eq!(sdst, sh_operand);
        // Only single-def single-use temporaries may be folded away.
        if !du.is_linear_temp(sh_operand) {
            continue;
        }
        // Loop-carried or multiply-defined variables cannot participate:
        // the rewrite reorders their reads.
        if du.def_count(x) != 1 || du.def_count(other) != 1 {
            continue;
        }
        if sh_operand == other || x == other {
            continue;
        }
        // The paper's criterion: move the shift when its source is at
        // least as deep as the other operand (ties rewrite, as in Fig. 8).
        if out.var_depth(x) < out.var_depth(other) {
            continue;
        }
        return Some(Rewrite { shift_pos: j, x, b: other, amount, dst });
    }
    None
}

/// Merges `dst = (x >> a) >> b` into `dst = x >> (a+b)` (and the retreat
/// twin) when the inner result is a linear temporary. Same single forward
/// pass as [`rewrite_block`]: a merge removes an instruction whose sole
/// use was the merged one, so only the merged shift itself can chain.
fn merge_shifts(
    block: &mut Vec<Op>,
    du: &DefUse,
    live: &mut DefUse,
    stats: &mut RebalanceStats,
) -> bool {
    let mut changed = false;
    let mut out = Emitted::with_capacity(block.len());
    for mut op in block.drain(..) {
        loop {
            stats.visits += 1;
            let (inner_id, outer_amount, advance) = match op {
                Op::Advance { src, amount, .. } => (src, amount, true),
                Op::Retreat { src, amount, .. } => (src, amount, false),
                _ => break,
            };
            let Some(&j) = out.def_pos.get(&inner_id) else { break };
            if !du.is_linear_temp(inner_id) {
                break;
            }
            let merged = match (&out.slots[j], advance) {
                (&Some(Op::Advance { src, amount, .. }), true) => {
                    Op::Advance { dst: op.dst(), src, amount: amount + outer_amount }
                }
                (&Some(Op::Retreat { src, amount, .. }), false) => {
                    Op::Retreat { dst: op.dst(), src, amount: amount + outer_amount }
                }
                _ => break,
            };
            let inner = out.remove(j);
            live.note_op_removed(&inner);
            live.note_op_removed(&op);
            live.note_op_added(&merged);
            op = merged;
            stats.merges += 1;
            changed = true;
        }
        out.push(op);
    }
    *block = out.finish();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_bitstream::Basis;
    use bitgen_ir::{interpret, lower, ProgramBuilder};
    use bitgen_regex::{parse, ByteSet};

    /// Rebalancing must never change semantics.
    fn assert_preserves(pattern: &str, input: &[u8]) {
        let prog = lower(&parse(pattern).unwrap());
        let mut balanced = prog.clone();
        rebalance(&mut balanced);
        let basis = Basis::transpose(input);
        let before = interpret(&prog, &basis);
        let after = interpret(&balanced, &basis);
        for (x, y) in before.outputs.iter().zip(&after.outputs) {
            assert_eq!(x.positions(), y.positions(), "pattern {pattern:?}");
        }
    }

    #[test]
    fn figure8_abb() {
        // /abb/ is the paper's running example: both ANDs get rewritten and
        // the trailing shifts merge, leaving retreats on the b-classes.
        let mut prog = lower(&parse("abb").unwrap());
        let stats = rebalance(&mut prog);
        assert!(stats.rewrites >= 2, "stats: {stats:?}");
        assert!(stats.merges >= 1, "stats: {stats:?}");
        // After rebalancing some shift must apply directly to a class
        // stream (the `B3 << 2` of Fig. 9).
        let mut has_deep_retreat = false;
        prog.for_each_op(&mut |op| {
            if let Op::Retreat { amount, .. } = op {
                if *amount >= 2 {
                    has_deep_retreat = true;
                }
            }
        });
        assert!(has_deep_retreat, "expected a merged retreat:\n{}", bitgen_ir::pretty(&prog));
    }

    #[test]
    fn semantics_preserved() {
        for (pat, input) in [
            ("abb", &b"xabbabb_ab"[..]),
            ("abcd", b"abcdabcd"),
            ("a(bc)*d", b"adabcdabcbcd"),
            ("(ab|ba)+", b"abbaab"),
            ("a{3}b", b"aaabaaab"),
            ("[a-c][b-d][c-e]", b"abcbcdcde"),
        ] {
            assert_preserves(pat, input);
        }
    }

    #[test]
    fn match_at_stream_edges_preserved() {
        // The AND identity must hold at position 0 and the final byte.
        assert_preserves("abb", b"abb");
        assert_preserves("abcde", b"abcde");
    }

    #[test]
    fn converges() {
        let mut prog = lower(&parse("abcdefgh").unwrap());
        let stats = rebalance(&mut prog);
        assert!(stats.iterations < MAX_ITERATIONS, "did not converge: {stats:?}");
        // Re-running is a no-op.
        let again = rebalance(&mut prog);
        assert_eq!(again.rewrites, 0);
        assert_eq!(again.merges, 0);
    }

    #[test]
    fn loop_carried_vars_untouched() {
        // Accumulators inside while loops are multi-def and must not be
        // rewritten; semantics over loops stay intact.
        assert_preserves("a(bc)*d", b"abcbcbcbcd");
        assert_preserves("x(ab)*y", b"xy xaby xababy");
    }

    #[test]
    fn or_is_never_rewritten() {
        let mut b = ProgramBuilder::new();
        let x = b.match_cc(ByteSet::singleton(b'x'));
        let y = b.match_cc(ByteSet::singleton(b'y'));
        let sh = b.advance(x, 1);
        let o = b.or(sh, y);
        b.mark_output(o);
        let mut prog = b.finish();
        let before = prog.clone();
        let stats = rebalance(&mut prog);
        assert_eq!(stats.rewrites, 0);
        assert_eq!(prog, before);
    }

    #[test]
    fn shift_on_shallow_operand_kept() {
        // (x >> 1) & deep: the shift is already on the shallow operand;
        // moving it to the deeper one would lengthen the chain.
        let mut b = ProgramBuilder::new();
        let x = b.match_cc(ByteSet::singleton(b'x'));
        let y = b.match_cc(ByteSet::singleton(b'y'));
        let d1 = b.and(y, y);
        let d2 = b.and(d1, y);
        let sh = b.advance(x, 1);
        let a = b.and(sh, d2);
        b.mark_output(a);
        let mut prog = b.finish();
        let stats = rebalance(&mut prog);
        assert_eq!(stats.rewrites, 0, "{}", bitgen_ir::pretty(&prog));
    }

    #[test]
    fn def_use_cache_stays_exact() {
        // `rebalance_with` promises the caller's cache describes the
        // rebalanced program on return; verify against a recompute.
        for pat in ["abb", "abcdefgh", "a(bc)*d", "(ab|ba)+", "(?:(?:ab){4}){3}"] {
            let mut prog = lower(&parse(pat).unwrap());
            let mut du = DefUse::of(&prog);
            rebalance_with(&mut prog, &mut du);
            let truth = DefUse::of(&prog);
            for id in 0..prog.num_streams() {
                let id = StreamId(id);
                assert_eq!(du.def_count(id), truth.def_count(id), "defs of {id:?} in {pat:?}");
                assert_eq!(du.use_count(id), truth.use_count(id), "uses of {id:?} in {pat:?}");
            }
        }
    }

    #[test]
    fn merge_only_same_direction() {
        let mut b = ProgramBuilder::new();
        let x = b.match_cc(ByteSet::singleton(b'x'));
        let adv = b.advance(x, 2);
        let ret = b.retreat(adv, 1);
        b.mark_output(ret);
        let mut prog = b.finish();
        let stats = rebalance(&mut prog);
        assert_eq!(stats.merges, 0, "advance+retreat must not merge");
        // And semantics hold.
        let basis = Basis::transpose(b"xxxx");
        let r = interpret(&prog, &basis);
        assert_eq!(r.outputs[0].positions(), vec![1, 2, 3]);
    }
}

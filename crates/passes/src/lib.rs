//! Compiler passes for BitGen's interleaved execution.
//!
//! The three program-level analyses/transforms of the paper:
//!
//! - [`OverlapInfo`] — overlap-distance analysis for Dependency-Aware
//!   Thread-Data Mapping (§4.2): how far each block's window must extend,
//!   statically plus per loop trip;
//! - [`rebalance`] — Shift Rebalancing (§5.2): operand rewriting that
//!   flattens SHIFT/AND dependency chains so shifts become schedulable;
//! - [`insert_zero_skips`] — Zero Block Skipping (§6): `if` guards over
//!   zero-derived instruction ranges, with interval-based multi-guard
//!   insertion.
//!
//! Barrier scheduling and merging (§5.3) consume the rebalanced program at
//! kernel-generation time and live in `bitgen-kernel`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod overlap;
mod rebalance;
mod zbs;

pub use metrics::PassMetrics;
pub use overlap::{Hull, LoopId, OverlapInfo, BASE_TRIPS};
pub use rebalance::{rebalance, rebalance_with, RebalanceStats};
pub use zbs::{insert_zero_skips, insert_zero_skips_with, ZbsConfig, ZbsStats};

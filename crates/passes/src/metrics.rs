//! Compile-time metrics for the transform pipeline.

use crate::{RebalanceStats, ZbsStats};

/// What the transform pipeline did to one program and what it cost.
///
/// Wall times make compile-time regressions measurable; the visit
/// counters pin the complexity *class* without flaky wall-clock
/// assertions — both passes are near-linear in program size by
/// construction, and the regression suite asserts the visit/op ratio
/// stays flat as patterns grow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassMetrics {
    /// Shift-rebalancing outcome (zeroed when the scheme skips the pass).
    pub rebalance: RebalanceStats,
    /// Wall time of the rebalancing pass, in nanoseconds.
    pub rebalance_nanos: u64,
    /// Zero-block-skipping outcome (zeroed when the scheme skips the
    /// pass).
    pub zbs: ZbsStats,
    /// Wall time of the zero-block-skipping pass, in nanoseconds.
    pub zbs_nanos: u64,
}

impl PassMetrics {
    /// Instructions examined across all passes — the pipeline's total
    /// work counter.
    pub fn total_visits(&self) -> u64 {
        self.rebalance.visits + self.zbs.visits
    }

    /// Total wall time spent in transform passes, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.rebalance_nanos + self.zbs_nanos
    }

    /// Folds another program's pipeline metrics into this one (engines
    /// compile one program per pattern group).
    pub fn absorb(&mut self, other: &PassMetrics) {
        self.rebalance.rewrites += other.rebalance.rewrites;
        self.rebalance.merges += other.rebalance.merges;
        self.rebalance.iterations += other.rebalance.iterations;
        self.rebalance.visits += other.rebalance.visits;
        self.rebalance_nanos += other.rebalance_nanos;
        self.zbs.guards += other.zbs.guards;
        self.zbs.guarded_ops += other.zbs.guarded_ops;
        self.zbs.prezeros += other.zbs.prezeros;
        self.zbs.visits += other.zbs.visits;
        self.zbs_nanos += other.zbs_nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_absorb() {
        let mut a = PassMetrics {
            rebalance: RebalanceStats { rewrites: 1, merges: 2, iterations: 3, visits: 10 },
            rebalance_nanos: 100,
            zbs: ZbsStats { guards: 4, guarded_ops: 5, prezeros: 6, visits: 20 },
            zbs_nanos: 200,
        };
        assert_eq!(a.total_visits(), 30);
        assert_eq!(a.total_nanos(), 300);
        a.absorb(&a.clone());
        assert_eq!(a.total_visits(), 60);
        assert_eq!(a.zbs.guards, 8);
        assert_eq!(a.rebalance_nanos, 200);
    }
}

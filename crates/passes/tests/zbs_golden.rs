//! Golden snapshots of pretty-printed guarded IR.
//!
//! Guard *placement* is part of the ZBS pass's observable behaviour (it
//! determines how much work a skip saves), but stats alone can't show a
//! placement regression. These snapshots make any change to the emitted
//! structure reviewable as a plain diff. Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p bitgen-passes --test zbs_golden`.

use bitgen_ir::{lower, pretty};
use bitgen_passes::{insert_zero_skips, rebalance, ZbsConfig};
use bitgen_regex::parse;

/// (snapshot name, pattern, interval, rebalance before zbs)
const CASES: &[(&str, &str, usize, bool)] = &[
    ("literal_i8", "abcdefgh", 8, false),
    ("literal_i2", "abcdefgh", 2, false),
    ("kleene_i4", "a(bc)*d", 4, false),
    ("alt_i8", "(ab|cd)ef", 8, false),
    ("alt_tail_i8", "abcd|x", 8, false),
    ("rebalanced_i4", "abcdefgh", 4, true),
];

fn guarded_ir(pattern: &str, interval: usize, rebalance_first: bool) -> String {
    let mut prog = lower(&parse(pattern).expect("test patterns parse"));
    if rebalance_first {
        rebalance(&mut prog);
    }
    insert_zero_skips(&mut prog, ZbsConfig { interval, min_range: 2 });
    pretty(&prog)
}

#[test]
fn golden_guarded_ir() {
    let dir = format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"));
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for &(name, pattern, interval, rebalance_first) in CASES {
        let actual = guarded_ir(pattern, interval, rebalance_first);
        let path = format!("{dir}/{name}.ir");
        if update {
            std::fs::write(&path, &actual).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {path}: {e}"));
        assert_eq!(
            actual, expected,
            "guarded IR changed for {name} ({pattern:?}, interval {interval});\n\
             if intentional, regenerate with UPDATE_GOLDEN=1\n--- actual ---\n{actual}"
        );
    }
}

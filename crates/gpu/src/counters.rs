//! Event counters collected while emulating kernels.
//!
//! These are the quantities Nsight Compute reports for the real system
//! (Table 4, Table 6): ALU work, shared-memory traffic, barriers, DRAM
//! words moved, loop trips, and work skipped by zero-block guards. The
//! cost model turns them into cycles and MB/s.

use std::ops::AddAssign;

/// Counters for one CTA (accumulated across all its window iterations).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CtaCounters {
    /// Register ALU instructions executed (each is one CTA-wide issue of
    /// T lanes).
    pub alu_ops: u64,
    /// Shared-memory stores executed (T words each).
    pub smem_stores: u64,
    /// Shared-memory shifted reads executed (T words each, plus the
    /// cross-word neighbour access).
    pub smem_loads: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Words loaded from global memory (basis + materialised streams).
    pub global_load_words: u64,
    /// Words stored to global memory (outputs + materialised streams).
    pub global_store_words: u64,
    /// CTA-wide condition reductions evaluated (`if`/`while` headers).
    pub reductions: u64,
    /// Instructions skipped by zero-block guards.
    pub skipped_ops: u64,
    /// Window iterations executed (including overlap retries).
    pub window_iterations: u64,
    /// Trip counts per `while` loop (structural pre-order), summed over
    /// all window iterations.
    pub loop_trips: Vec<u64>,
}

impl CtaCounters {
    /// Creates zeroed counters for a kernel with `num_loops` loops.
    pub fn new(num_loops: usize) -> CtaCounters {
        CtaCounters { loop_trips: vec![0; num_loops], ..CtaCounters::default() }
    }

    /// Total shared-memory accesses (stores + loads).
    pub fn smem_accesses(&self) -> u64 {
        self.smem_stores + self.smem_loads
    }

    /// Total global-memory words moved.
    pub fn global_words(&self) -> u64 {
        self.global_load_words + self.global_store_words
    }

    /// Global bytes read, assuming 32-bit words.
    pub fn dram_read_bytes(&self) -> u64 {
        self.global_load_words * 4
    }

    /// Global bytes written, assuming 32-bit words.
    pub fn dram_write_bytes(&self) -> u64 {
        self.global_store_words * 4
    }
}

impl AddAssign<&CtaCounters> for CtaCounters {
    fn add_assign(&mut self, rhs: &CtaCounters) {
        self.alu_ops += rhs.alu_ops;
        self.smem_stores += rhs.smem_stores;
        self.smem_loads += rhs.smem_loads;
        self.barriers += rhs.barriers;
        self.global_load_words += rhs.global_load_words;
        self.global_store_words += rhs.global_store_words;
        self.reductions += rhs.reductions;
        self.skipped_ops += rhs.skipped_ops;
        self.window_iterations += rhs.window_iterations;
        if self.loop_trips.len() < rhs.loop_trips.len() {
            self.loop_trips.resize(rhs.loop_trips.len(), 0);
        }
        for (a, b) in self.loop_trips.iter_mut().zip(&rhs.loop_trips) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate() {
        let mut a = CtaCounters::new(2);
        a.alu_ops = 10;
        a.loop_trips[0] = 3;
        let mut b = CtaCounters::new(2);
        b.alu_ops = 5;
        b.smem_stores = 2;
        b.smem_loads = 3;
        b.loop_trips[1] = 4;
        a += &b;
        assert_eq!(a.alu_ops, 15);
        assert_eq!(a.smem_accesses(), 5);
        assert_eq!(a.loop_trips, vec![3, 4]);
    }

    #[test]
    fn byte_accounting() {
        let mut c = CtaCounters::new(0);
        c.global_load_words = 10;
        c.global_store_words = 4;
        assert_eq!(c.dram_read_bytes(), 40);
        assert_eq!(c.dram_write_bytes(), 16);
        assert_eq!(c.global_words(), 14);
    }
}

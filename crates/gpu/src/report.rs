//! Nsight-style textual profiling reports.
//!
//! The paper uses Nsight Compute to explain its results (Tables 4–6);
//! this module renders the equivalent view of an emulated launch: per-CTA
//! event counts, the cost model's cycle attribution, occupancy, and the
//! launch-level bounds.

use crate::cost::{CostBreakdown, CtaWork};
use crate::device::DeviceConfig;
use std::fmt::Write as _;

/// Renders a profiling report for a launch of `works` on `device`,
/// given its `cost` estimate (from [`DeviceConfig::estimate`]).
///
/// # Examples
///
/// ```
/// use bitgen_gpu::{profile_report, CtaCounters, CtaWork, DeviceConfig};
///
/// let mut counters = CtaCounters::new(0);
/// counters.alu_ops = 1000;
/// counters.barriers = 50;
/// let work = CtaWork { counters, threads: 64, regs_per_thread: 32, smem_bytes: 1024 };
/// let device = DeviceConfig::rtx3090();
/// let cost = device.estimate(std::slice::from_ref(&work));
/// let report = profile_report(&device, &[work], &cost);
/// assert!(report.contains("occupancy"));
/// ```
pub fn profile_report(device: &DeviceConfig, works: &[CtaWork], cost: &CostBreakdown) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== launch profile on {} ===", device.name);
    let _ = writeln!(
        out,
        "CTAs: {}   occupancy: {}/SM   compute: {:.3} ms   memory bound: {:.3} ms   barrier stall: {:.1}%",
        works.len(),
        cost.occupancy,
        cost.compute_seconds * 1e3,
        cost.memory_seconds * 1e3,
        cost.barrier_stall_frac * 100.0
    );
    let _ = writeln!(
        out,
        "{:>4}  {:>10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>7} {:>9}",
        "CTA", "alu", "smem", "barriers", "reduce", "ld words", "st words", "skipped", "regs", "cycles"
    );
    for (i, (w, cycles)) in works.iter().zip(&cost.cta_cycles).enumerate() {
        let c = &w.counters;
        let _ = writeln!(
            out,
            "{:>4}  {:>10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>7} {:>9.0}",
            i,
            c.alu_ops,
            c.smem_accesses(),
            c.barriers,
            c.reductions,
            c.global_load_words,
            c.global_store_words,
            c.skipped_ops,
            w.regs_per_thread,
            cycles
        );
    }
    // Cycle attribution at launch level (recomputed with the same model).
    let occupancy = cost.occupancy.max(1) as f64;
    let sm_bpc = device.l2_bw_gbps * 1e9 / (device.sms as f64 * device.clock_ghz * 1e9);
    let mut alu = 0.0;
    let mut smem = 0.0;
    let mut barrier = 0.0;
    let mut reduce = 0.0;
    let mut glob = 0.0;
    for w in works {
        let t = w.threads as f64;
        let c = &w.counters;
        alu += c.alu_ops as f64 * (t / device.int_lanes_per_sm as f64).ceil().max(1.0);
        smem += c.smem_accesses() as f64 * (t / device.smem_banks as f64).ceil().max(1.0);
        barrier += c.barriers as f64 * device.barrier_cost_cycles / occupancy;
        reduce += c.reductions as f64 * device.reduce_cost_cycles / occupancy;
        glob += c.global_words() as f64 * 4.0 / sm_bpc;
    }
    let total = (alu + smem + barrier + reduce + glob).max(1.0);
    let _ = writeln!(out, "cycle attribution (all CTAs):");
    for (label, v) in [
        ("alu", alu),
        ("shared memory", smem),
        ("barriers", barrier),
        ("reductions", reduce),
        ("global memory", glob),
    ] {
        let _ = writeln!(out, "  {label:<14} {:>12.0} cycles  {:>5.1}%", v, v / total * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CtaCounters;

    fn work() -> CtaWork {
        let mut c = CtaCounters::new(1);
        c.alu_ops = 5_000;
        c.smem_stores = 400;
        c.smem_loads = 400;
        c.barriers = 200;
        c.reductions = 40;
        c.global_load_words = 2_000;
        c.global_store_words = 500;
        c.skipped_ops = 77;
        CtaWork { counters: c, threads: 128, regs_per_thread: 64, smem_bytes: 4096 }
    }

    #[test]
    fn report_mentions_every_section() {
        let device = DeviceConfig::rtx3090();
        let works = vec![work(), work()];
        let cost = device.estimate(&works);
        let r = profile_report(&device, &works, &cost);
        for needle in [
            "RTX 3090",
            "occupancy",
            "barrier stall",
            "cycle attribution",
            "global memory",
            "skipped",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
        // One row per CTA.
        assert_eq!(r.matches("\n   0  ").count(), 1);
        assert_eq!(r.matches("\n   1  ").count(), 1);
    }

    #[test]
    fn attribution_sums_to_100_percent() {
        let device = DeviceConfig::rtx3090();
        let works = vec![work()];
        let cost = device.estimate(&works);
        let r = profile_report(&device, &works, &cost);
        let sum: f64 = r
            .lines()
            .filter(|l| l.ends_with('%') && l.starts_with("  "))
            .map(|l| {
                l.rsplit_once("  ")
                    .and_then(|(_, p)| p.trim_end_matches('%').trim().parse::<f64>().ok())
                    .unwrap_or(0.0)
            })
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "attribution sums to {sum}");
    }
}

//! Deterministic fault injection for the CTA emulator.
//!
//! The emulator's claim to correctness rests on its checks: the barrier
//! race detector, the executor's overlap validation, and the cross-check
//! against the reference interpreter. A [`FaultPlan`] corrupts execution
//! on purpose — flipping a shared-memory bit, skipping a barrier, lying
//! about loop trips or counters, or panicking outright — so tests can
//! prove those checks actually fire instead of trusting them by
//! construction.
//!
//! Plans are deterministic: the same `(plan, kernel, input)` triple
//! corrupts the same event on every run, so a failing seed reproduces
//! exactly. Each plan fires **at most once** (window retries re-run the
//! same instructions; a refiring fault would corrupt a different event on
//! the retry and break reproducibility).
//!
//! Because the emulator executes threads sequentially, a skipped barrier
//! never produces the silent corruption real hardware would: it either
//! trips the race detector on a later shared-memory access or the elision
//! was harmless. Every other kind corrupts real state and must be caught
//! downstream (or proven masked — bit-identical output to a clean run).

/// Which part of CTA execution a [`FaultPlan`] corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of the slot written by the trigger-th `SmemStore`.
    SmemFlip,
    /// Skip the flag-clearing of the trigger-th `Barrier` (the event
    /// counters still see the barrier, as hardware would execute it).
    SkipBarrier,
    /// Zero one recorded loop-trip / carry-run entry at the end of the
    /// trigger-th window, under-reporting the dynamic overlap reach.
    CorruptTrips,
    /// Inflate the window-iteration counter at the end of the trigger-th
    /// window.
    CorruptCounter,
    /// Panic on entry to the trigger-th window, as a hard emulator bug
    /// would.
    Panic,
}

/// A single deterministic fault: corrupt `kind`'s trigger-th event, with
/// `seed` selecting which word/bit/entry to hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to corrupt.
    pub kind: FaultKind,
    /// Which occurrence of the relevant event fires the fault (1-based;
    /// 0 is treated as 1).
    pub trigger: u32,
    /// Entropy for picking the corrupted word/bit/entry.
    pub seed: u64,
}

impl FaultPlan {
    /// Derives a plan from a bare seed, cycling through every [`FaultKind`]
    /// and a spread of triggers — the shape seeded sweeps iterate over.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let kind = match seed % 5 {
            0 => FaultKind::SmemFlip,
            1 => FaultKind::SkipBarrier,
            2 => FaultKind::CorruptTrips,
            3 => FaultKind::CorruptCounter,
            _ => FaultKind::Panic,
        };
        FaultPlan { kind, trigger: 1 + ((seed / 5) % 6) as u32, seed: mix(seed) }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::SmemFlip => "smem-flip",
            FaultKind::SkipBarrier => "skip-barrier",
            FaultKind::CorruptTrips => "corrupt-trips",
            FaultKind::CorruptCounter => "corrupt-counter",
            FaultKind::Panic => "panic",
        })
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ event {} (seed {:#x})", self.kind, self.trigger, self.seed)
    }
}

/// SplitMix64 finalizer: decorrelates the fault target bits from the
/// low-entropy sweep seeds (0, 1, 2, ...).
pub(crate) fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_covers_all_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..30 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.trigger >= 1);
            kinds.insert(format!("{:?}", a.kind));
        }
        assert_eq!(kinds.len(), 5, "sweep must exercise every fault kind");
    }

    #[test]
    fn display_names_the_fault() {
        let plan = FaultPlan { kind: FaultKind::Panic, trigger: 2, seed: 0x10 };
        assert_eq!(plan.to_string(), "panic @ event 2 (seed 0x10)");
        assert_eq!(FaultKind::SmemFlip.to_string(), "smem-flip");
    }

    #[test]
    fn mix_spreads_consecutive_seeds() {
        assert_ne!(mix(0) >> 32, mix(1) >> 32);
        assert_ne!(mix(1), mix(2));
    }
}

//! Simulated GPU device configurations.
//!
//! Presets mirror the paper's three evaluation GPUs. The figures that
//! matter for the model are the ones the paper itself uses to explain its
//! portability results (§8.3): SM count and per-SM integer throughput,
//! whose product gives the 17.8 / 33.5 / 45.8 TIOPS ratio of
//! RTX 3090 : H100 : L40S ≈ 1 : 1.9 : 2.6, and DRAM bandwidth for the
//! memory-bound side.

/// Configuration of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// 32-bit integer lanes per SM (ops issued per cycle).
    pub int_lanes_per_sm: u32,
    /// DRAM bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Effective L2 bandwidth in GB/s. In the MISD regime every CTA reads
    /// the same input stream, so per-CTA global traffic is served from L2,
    /// not DRAM; this is what lets the L40S (96 MB L2, modest GDDR6)
    /// outrun the H100 on BitGen, as the paper observes.
    pub l2_bw_gbps: f64,
    /// DRAM access latency in core cycles (drives latency-bound engines
    /// such as the ngAP-style NFA baseline).
    pub dram_latency_cycles: f64,
    /// Shared-memory banks per SM (words serviced per cycle).
    pub smem_banks: u32,
    /// Fixed cycles a CTA stalls at one barrier with no co-resident CTA
    /// to hide the latency.
    pub barrier_cost_cycles: f64,
    /// Cycles for a CTA-wide `any` reduction (the §6 `atomicOr`).
    pub reduce_cost_cycles: f64,
    /// Hardware cap on resident CTAs per SM.
    pub max_ctas_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
}

impl DeviceConfig {
    /// The paper's primary device: NVIDIA RTX 3090 (Ampere, 82 SMs,
    /// 17.8 TIOPS, 936 GB/s GDDR6X).
    pub fn rtx3090() -> DeviceConfig {
        DeviceConfig {
            name: "RTX 3090".to_string(),
            sms: 82,
            clock_ghz: 1.695,
            int_lanes_per_sm: 128,
            mem_bw_gbps: 936.0,
            l2_bw_gbps: 2000.0,
            dram_latency_cycles: 400.0,
            smem_banks: 32,
            barrier_cost_cycles: 30.0,
            reduce_cost_cycles: 20.0,
            max_ctas_per_sm: 4,
            smem_per_sm: 100 * 1024,
            regs_per_sm: 65536,
        }
    }

    /// NVIDIA H100 NVL (Hopper, 132 SMs, 33.5 TIOPS, HBM3).
    pub fn h100() -> DeviceConfig {
        DeviceConfig {
            name: "H100 NVL".to_string(),
            sms: 132,
            clock_ghz: 1.98,
            int_lanes_per_sm: 128,
            mem_bw_gbps: 3900.0,
            l2_bw_gbps: 5500.0,
            // HBM3 trades latency for bandwidth; at the higher core clock
            // this roughly cancels for latency-bound kernels (the paper's
            // ngAP shows no H100 gain).
            dram_latency_cycles: 480.0,
            smem_banks: 32,
            barrier_cost_cycles: 30.0,
            reduce_cost_cycles: 20.0,
            max_ctas_per_sm: 4,
            smem_per_sm: 228 * 1024,
            regs_per_sm: 65536,
        }
    }

    /// NVIDIA L40S (Ada, 142 SMs, 45.8 TIOPS, GDDR6).
    pub fn l40s() -> DeviceConfig {
        DeviceConfig {
            name: "L40S".to_string(),
            sms: 142,
            clock_ghz: 2.52,
            int_lanes_per_sm: 128,
            mem_bw_gbps: 864.0,
            l2_bw_gbps: 4500.0,
            dram_latency_cycles: 400.0,
            smem_banks: 32,
            barrier_cost_cycles: 30.0,
            reduce_cost_cycles: 20.0,
            max_ctas_per_sm: 4,
            smem_per_sm: 100 * 1024,
            regs_per_sm: 65536,
        }
    }

    /// Total integer throughput in tera-ops/s (the paper's TIOPS).
    pub fn tiops(&self) -> f64 {
        self.sms as f64 * self.int_lanes_per_sm as f64 * self.clock_ghz / 1e3
    }

    /// Seconds to transpose `bytes` of input on this device.
    ///
    /// The paper measures ~0.026 ms per MB on the RTX 3090 (37,449 MB/s),
    /// a bandwidth-bound preprocessing kernel; scale by memory bandwidth.
    pub fn transpose_seconds(&self, bytes: usize) -> f64 {
        let rate_3090 = 37_449e6; // bytes per second
        let rate = rate_3090 * self.mem_bw_gbps / 936.0;
        bytes as f64 / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiops_match_paper_ratios() {
        let a = DeviceConfig::rtx3090().tiops();
        let b = DeviceConfig::h100().tiops();
        let c = DeviceConfig::l40s().tiops();
        assert!((a - 17.8).abs() < 0.5, "3090 tiops {a}");
        assert!((b / a - 1.9).abs() < 0.15, "h100 ratio {}", b / a);
        assert!((c / a - 2.6).abs() < 0.15, "l40s ratio {}", c / a);
    }

    #[test]
    fn transpose_rate_matches_paper() {
        let d = DeviceConfig::rtx3090();
        let s = d.transpose_seconds(1 << 20);
        assert!((s - 0.026e-3).abs() < 0.005e-3, "1 MB transpose {s}s");
    }

    #[test]
    fn presets_have_nonempty_names() {
        for d in [DeviceConfig::rtx3090(), DeviceConfig::h100(), DeviceConfig::l40s()] {
            assert!(!d.name.is_empty());
            assert!(d.sms > 0 && d.clock_ghz > 0.0);
        }
    }
}

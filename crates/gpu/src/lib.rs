//! Simulated GPU for BitGen: a SIMT CTA emulator plus a device cost model.
//!
//! The paper runs generated CUDA on real GPUs; this crate substitutes
//! both layers. [`Cta`] executes the kernel IR word-for-word with T
//! lock-step threads, shared-memory slots and *checked* barrier semantics
//! (a missing barrier is a [`RaceError`], not silent corruption), while
//! counting the events Nsight would report ([`CtaCounters`]).
//! [`DeviceConfig`] prices those events for the paper's three GPUs
//! (RTX 3090 / H100 NVL / L40S) and schedules CTAs across SMs, yielding
//! seconds and MB/s.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod counters;
mod cta;
mod device;
mod fault;
mod report;

pub use cost::{throughput_mbps, CostBreakdown, CtaWork};
pub use counters::CtaCounters;
pub use cta::{read_window_words, Cta, RaceError, WindowInputs, WindowOutput};
pub use device::DeviceConfig;
pub use fault::{FaultKind, FaultPlan};
pub use report::profile_report;

//! The SIMT CTA emulator.
//!
//! Executes a [`Kernel`] the way one CTA would: T lock-step threads, each
//! holding one 32-bit word per register; cross-thread data moves only
//! through shared-memory slots. The emulator *checks* the barrier
//! discipline — a shifted read from a slot stored since the last barrier,
//! or a store to a slot read since the last barrier, is the Fig. 6 data
//! race and aborts with [`RaceError`] instead of silently producing the
//! corrupt values a real GPU would.
//!
//! The emulator executes one *window* at a time: a span of
//! `T × 32` bit positions starting at a (possibly negative) offset into
//! the streams. Dependency-aware thread-data mapping — choosing window
//! offsets, store regions, overlap retries — is the executor's job
//! (`bitgen-exec`); the emulator only runs the kernel faithfully.

use crate::counters::CtaCounters;
use crate::fault::{FaultKind, FaultPlan};
use bitgen_bitstream::BitStream;
use bitgen_kernel::{KOp, KStmt, Kernel, WORD_BITS};
use std::error::Error;
use std::fmt;

/// A shared-memory data race detected by the emulator.
///
/// On real hardware this is the silent corruption of Fig. 6; here it is a
/// hard error so tests can prove the generated barrier placement is
/// sufficient (and that removing barriers is caught).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceError {
    /// Which slot raced.
    pub slot: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shared-memory race on slot {}: {}", self.slot, self.message)
    }
}

impl Error for RaceError {}

/// Inputs available to a window execution.
#[derive(Debug, Clone, Copy)]
pub struct WindowInputs<'a> {
    /// The eight basis bitstreams (full length).
    pub basis: &'a [BitStream; 8],
    /// Materialised global input streams (full length), indexed by the
    /// kernel's `LoadGlobal` table.
    pub globals: &'a [BitStream],
}

/// Result of executing one window.
#[derive(Debug, Clone)]
pub struct WindowOutput {
    /// Per output stream: the T words the CTA computed for this window.
    pub words: Vec<Vec<u32>>,
    /// Per dynamic site: trips taken by each `while` loop, or the longest
    /// carry-feeding run (bits) observed by each `add`, during this
    /// window.
    pub loop_trips: Vec<u64>,
}

/// A reusable CTA execution context.
#[derive(Debug)]
pub struct Cta {
    threads: usize,
    regs: Vec<Vec<u32>>,
    smem: Vec<Vec<u32>>,
    /// Per-slot epoch flags for race checking.
    stored_since_barrier: Vec<bool>,
    read_since_barrier: Vec<bool>,
    /// Armed fault, its remaining event countdown, and whether it fired.
    fault: Option<FaultPlan>,
    fault_countdown: u32,
    fault_fired: bool,
}

impl Cta {
    /// Creates an execution context for `kernel` with `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(kernel: &Kernel, threads: usize) -> Cta {
        assert!(threads > 0, "a CTA needs at least one thread");
        Cta {
            threads,
            regs: vec![vec![0; threads]; kernel.num_regs as usize],
            smem: vec![vec![0; threads]; kernel.num_slots as usize],
            stored_since_barrier: vec![false; kernel.num_slots as usize],
            read_since_barrier: vec![false; kernel.num_slots as usize],
            fault: None,
            fault_countdown: 0,
            fault_fired: false,
        }
    }

    /// Arms a single-shot [`FaultPlan`]: the trigger-th occurrence of the
    /// plan's event is corrupted, once, across all subsequent windows.
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
        self.fault_countdown = plan.trigger.max(1);
        self.fault_fired = false;
    }

    /// Whether the armed fault has corrupted an event yet. A plan whose
    /// trigger exceeds the events the run produces never fires — it
    /// injected nothing.
    pub fn fault_fired(&self) -> bool {
        self.fault_fired
    }

    /// Counts down toward the armed fault on one occurrence of `kind`'s
    /// event; returns the plan's mixed seed bits exactly once, at the
    /// firing occurrence.
    fn fault_due(&mut self, kind: FaultKind) -> Option<u64> {
        let plan = self.fault?;
        if plan.kind != kind || self.fault_fired {
            return None;
        }
        self.fault_countdown -= 1;
        if self.fault_countdown > 0 {
            return None;
        }
        self.fault_fired = true;
        Some(plan.seed)
    }

    /// Window width in bits.
    pub fn window_bits(&self) -> usize {
        self.threads * WORD_BITS
    }

    /// Executes `kernel` over the window starting at bit `start`
    /// (negative starts read zeros), updating `counters`.
    ///
    /// # Errors
    ///
    /// Returns [`RaceError`] if the kernel violates the barrier
    /// discipline.
    pub fn run_window(
        &mut self,
        kernel: &Kernel,
        inputs: WindowInputs<'_>,
        start: i64,
        counters: &mut CtaCounters,
    ) -> Result<WindowOutput, RaceError> {
        // Fresh register state per window: interleaved execution never
        // forwards values between iterations (that is the whole point of
        // recomputation), and stale values would mask missing-overlap
        // bugs.
        for r in &mut self.regs {
            r.iter_mut().for_each(|w| *w = 0);
        }
        // Race-check flags deliberately persist across windows: the real
        // kernel's block loop runs back-to-back iterations, so a trailing
        // barrier elided at the end of one iteration races with the first
        // shared-memory store of the next.
        counters.window_iterations += 1;
        if self.fault_due(FaultKind::Panic).is_some() {
            panic!("injected fault: forced panic on window entry");
        }
        let mut out = WindowOutput {
            words: vec![vec![0; self.threads]; kernel.num_outputs as usize],
            loop_trips: vec![0; kernel.num_sites as usize],
        };
        self.run_stmts(kernel.stmts.as_slice(), inputs, start, counters, &mut out)?;
        if let Some(bits) = self.fault_due(FaultKind::CorruptTrips) {
            // Zero a recorded trip count: under-reporting the dynamic
            // reach is the dangerous direction (over-reporting only makes
            // the executor more conservative).
            if !out.loop_trips.is_empty() {
                let i = bits as usize % out.loop_trips.len();
                out.loop_trips[i] = 0;
            }
        }
        if let Some(bits) = self.fault_due(FaultKind::CorruptCounter) {
            counters.window_iterations =
                counters.window_iterations.wrapping_add(1 + bits % 3);
        }
        for (slot, trips) in out.loop_trips.iter().enumerate() {
            if let Some(t) = counters.loop_trips.get_mut(slot) {
                *t += trips;
            }
        }
        Ok(out)
    }

    fn run_stmts(
        &mut self,
        stmts: &[KStmt],
        inputs: WindowInputs<'_>,
        start: i64,
        counters: &mut CtaCounters,
        out: &mut WindowOutput,
    ) -> Result<(), RaceError> {
        for stmt in stmts {
            match stmt {
                KStmt::Op(op) => self.exec(op, inputs, start, counters, out)?,
                KStmt::If { cond, body } => {
                    counters.reductions += 1;
                    if self.any(*cond) {
                        self.run_stmts(body, inputs, start, counters, out)?;
                    } else {
                        counters.skipped_ops += count_ops(body);
                    }
                }
                KStmt::While { cond, body, site } => {
                    // Fixpoint bound: a marker loop cannot need more trips
                    // than there are window positions (plus slack).
                    let mut fuel = self.window_bits() as u64 + 4;
                    loop {
                        counters.reductions += 1;
                        if !self.any(*cond) {
                            break;
                        }
                        assert!(fuel > 0, "kernel while-loop exceeded its fixpoint bound");
                        fuel -= 1;
                        out.loop_trips[*site as usize] += 1;
                        self.run_stmts(body, inputs, start, counters, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn exec(
        &mut self,
        op: &KOp,
        inputs: WindowInputs<'_>,
        start: i64,
        counters: &mut CtaCounters,
        out: &mut WindowOutput,
    ) -> Result<(), RaceError> {
        match op {
            KOp::LoadBasis { dst, bit } => {
                counters.global_load_words += self.threads as u64;
                let words = read_window_words(&inputs.basis[*bit as usize], start, self.threads);
                self.regs[dst.0 as usize] = words;
            }
            KOp::LoadGlobal { dst, input } => {
                counters.global_load_words += self.threads as u64;
                let words = read_window_words(&inputs.globals[*input as usize], start, self.threads);
                self.regs[dst.0 as usize] = words;
            }
            KOp::Const { dst, ones } => {
                counters.alu_ops += 1;
                let v = if *ones { u32::MAX } else { 0 };
                self.regs[dst.0 as usize].iter_mut().for_each(|w| *w = v);
            }
            KOp::Not { dst, a } => {
                counters.alu_ops += 1;
                for t in 0..self.threads {
                    let v = self.regs[a.0 as usize][t];
                    self.regs[dst.0 as usize][t] = !v;
                }
            }
            KOp::And { dst, a, b } => self.binop(*dst, *a, *b, counters, |x, y| x & y),
            KOp::Add { dst, a, b, site } => {
                // Window-wide long addition: on hardware a CTA-level
                // carry scan (log T steps through shared memory); here an
                // exact sequential ripple plus the corresponding costs.
                counters.alu_ops += (self.threads.ilog2() as u64).max(1) + 2;
                counters.smem_stores += 1;
                counters.smem_loads += 1;
                counters.barriers += 2;
                let mut carry = 0u64;
                let mut run = 0u64;
                let mut max_run = 0u64;
                for t in 0..self.threads {
                    let va = self.regs[a.0 as usize][t] as u64;
                    let vb = self.regs[b.0 as usize][t] as u64;
                    let sum = va + vb + carry;
                    self.regs[dst.0 as usize][t] = sum as u32;
                    carry = sum >> 32;
                    // The *exact* carry reach: positions receiving a
                    // carry-in are `sum ⊕ a ⊕ b`; the longest consecutive
                    // carry run is how far this addition reached across
                    // blocks — the dynamic quantity the overlap check
                    // compares against the window margin.
                    let mut carry_in = (sum as u32) ^ (va as u32) ^ (vb as u32);
                    for _ in 0..32 {
                        if carry_in & 1 == 1 {
                            run += 1;
                            max_run = max_run.max(run);
                        } else {
                            run = 0;
                        }
                        carry_in >>= 1;
                    }
                }
                let slot = &mut out.loop_trips[*site as usize];
                *slot = (*slot).max(max_run);
            }
            KOp::Or { dst, a, b } => self.binop(*dst, *a, *b, counters, |x, y| x | y),
            KOp::Xor { dst, a, b } => self.binop(*dst, *a, *b, counters, |x, y| x ^ y),
            KOp::Copy { dst, a } => {
                counters.alu_ops += 1;
                let v = self.regs[a.0 as usize].clone();
                self.regs[dst.0 as usize] = v;
            }
            KOp::SmemStore { slot, src } => {
                counters.smem_stores += 1;
                let s = slot.0 as usize;
                if self.read_since_barrier[s] || self.stored_since_barrier[s] {
                    return Err(RaceError {
                        slot: slot.0,
                        message: "store to a slot already accessed since the last barrier"
                            .to_string(),
                    });
                }
                self.stored_since_barrier[s] = true;
                self.smem[s].clone_from(&self.regs[src.0 as usize]);
                if let Some(bits) = self.fault_due(FaultKind::SmemFlip) {
                    let word = bits as usize % self.threads;
                    let bit = (bits >> 8) % 32;
                    self.smem[s][word] ^= 1 << bit;
                }
            }
            KOp::Barrier => {
                // A skipped barrier still costs a barrier on hardware; only
                // its synchronisation effect (the flag clearing) is lost.
                counters.barriers += 1;
                if self.fault_due(FaultKind::SkipBarrier).is_some() {
                    return Ok(());
                }
                self.stored_since_barrier.iter_mut().for_each(|f| *f = false);
                self.read_since_barrier.iter_mut().for_each(|f| *f = false);
            }
            KOp::ShiftRead { dst, slot, shift } => {
                counters.smem_loads += 1;
                let s = slot.0 as usize;
                if self.stored_since_barrier[s] {
                    return Err(RaceError {
                        slot: slot.0,
                        message: format!(
                            "shifted read of a slot stored since the last barrier (shift {shift})"
                        ),
                    });
                }
                self.read_since_barrier[s] = true;
                let src = &self.smem[s];
                let mut words = vec![0u32; self.threads];
                for (t, w) in words.iter_mut().enumerate() {
                    // Window-level shift: destination window bit i reads
                    // source window bit i - shift (advance) — bits outside
                    // the window read as zero.
                    let bit_start = t as i64 * WORD_BITS as i64 - shift;
                    *w = gather_word(src, bit_start);
                }
                self.regs[dst.0 as usize] = words;
            }
            KOp::StoreGlobal { output, src } => {
                counters.global_store_words += self.threads as u64;
                out.words[*output as usize].clone_from(&self.regs[src.0 as usize]);
            }
        }
        Ok(())
    }

    fn binop(
        &mut self,
        dst: bitgen_kernel::Reg,
        a: bitgen_kernel::Reg,
        b: bitgen_kernel::Reg,
        counters: &mut CtaCounters,
        f: impl Fn(u32, u32) -> u32,
    ) {
        counters.alu_ops += 1;
        let n = self.threads;
        for t in 0..n {
            let va = self.regs[a.0 as usize][t];
            let vb = self.regs[b.0 as usize][t];
            self.regs[dst.0 as usize][t] = f(va, vb);
        }
    }

    /// CTA-wide `any` reduction of a register (the `atomicOr` of §6).
    fn any(&self, reg: bitgen_kernel::Reg) -> bool {
        self.regs[reg.0 as usize].iter().any(|&w| w != 0)
    }
}

/// Counts instructions in a body (for the skipped-ops metric).
fn count_ops(stmts: &[KStmt]) -> u64 {
    stmts
        .iter()
        .map(|s| match s {
            KStmt::Op(_) => 1,
            KStmt::If { body, .. } | KStmt::While { body, .. } => count_ops(body),
        })
        .sum()
}

/// Reads `threads` consecutive 32-bit words of `stream` starting at bit
/// `start` (positions outside the stream read as zero).
pub fn read_window_words(stream: &BitStream, start: i64, threads: usize) -> Vec<u32> {
    (0..threads)
        .map(|t| {
            let bit = start + (t * WORD_BITS) as i64;
            stream_word(stream, bit)
        })
        .collect()
}

/// Extracts the 32-bit word of `stream` starting at signed bit offset
/// `start`.
fn stream_word(stream: &BitStream, start: i64) -> u32 {
    let words = stream.as_words();
    let len = stream.len() as i64;
    let mut out = 0u32;
    // Fast path: aligned and fully in range.
    if start >= 0 && start % 64 == 0 && start + 32 <= len {
        return (words[(start / 64) as usize] & 0xffff_ffff) as u32;
    }
    for j in 0..32i64 {
        let p = start + j;
        if p >= 0 && p < len {
            let w = words[(p / 64) as usize];
            if w >> (p % 64) & 1 == 1 {
                out |= 1 << j;
            }
        }
    }
    out
}

/// Extracts a 32-bit word from a T-word slot array at signed window-bit
/// offset `bit_start` (outside the slot reads zero).
fn gather_word(slot: &[u32], bit_start: i64) -> u32 {
    let total_bits = slot.len() as i64 * WORD_BITS as i64;
    if bit_start >= total_bits || bit_start + (WORD_BITS as i64) <= 0 {
        return 0;
    }
    if bit_start % WORD_BITS as i64 == 0 {
        let idx = bit_start / WORD_BITS as i64;
        return if idx >= 0 { slot[idx as usize] } else { 0 };
    }
    let lo_idx = bit_start.div_euclid(WORD_BITS as i64);
    let off = bit_start.rem_euclid(WORD_BITS as i64) as u32;
    let lo = if lo_idx >= 0 && lo_idx < slot.len() as i64 { slot[lo_idx as usize] } else { 0 };
    let hi_idx = lo_idx + 1;
    let hi = if hi_idx >= 0 && hi_idx < slot.len() as i64 { slot[hi_idx as usize] } else { 0 };
    (lo >> off) | (hi << (32 - off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_ir::lower;
    use bitgen_kernel::{compile, CodegenOptions, KStmt, Reg, Slot};
    use bitgen_regex::parse;

    fn basis_for(input: &[u8]) -> [BitStream; 8] {
        let b = bitgen_bitstream::Basis::transpose(input);
        b.streams().clone()
    }

    /// Runs a whole (single-window) match for a short input.
    fn run_once(pattern: &str, input: &[u8], threads: usize) -> Vec<usize> {
        let prog = lower(&parse(pattern).unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(input);
        let mut cta = Cta::new(&compiled.kernel, threads);
        let mut counters = CtaCounters::new(compiled.kernel.num_sites as usize);
        let out = cta
            .run_window(
                &compiled.kernel,
                WindowInputs { basis: &basis, globals: &[] },
                0,
                &mut counters,
            )
            .expect("no races in generated kernels");
        // Collect set bits below the stream length.
        let len = input.len() + 1;
        let mut ends = Vec::new();
        for (t, w) in out.words[0].iter().enumerate() {
            for j in 0..32 {
                let pos = t * 32 + j;
                if pos < len && w >> j & 1 == 1 {
                    ends.push(pos);
                }
            }
        }
        ends
    }

    #[test]
    fn matches_reference_for_small_inputs() {
        for (pat, input) in [
            ("cat", &b"bobcat"[..]),
            ("(abc)|d", b"abcdabce"),
            ("a(bc)*d", b"abcbcd"),
            ("a+", b"xaaax"),
            ("[a-c]{2}", b"abcab"),
        ] {
            let expect = bitgen_regex::match_ends(&parse(pat).unwrap(), input);
            let got = run_once(pat, input, 4);
            assert_eq!(got, expect, "pattern {pat:?}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        for threads in [1, 2, 4, 16] {
            assert_eq!(run_once("a(bc)*d", b"xxabcbcdyy", threads), vec![7]);
        }
    }

    #[test]
    fn window_offsets_read_zero_outside() {
        let stream = BitStream::from_positions(64, &[0, 5, 63]);
        let w = read_window_words(&stream, -32, 3);
        assert_eq!(w[0], 0);
        assert_eq!(w[1], 0b100001);
        let tail = read_window_words(&stream, 32, 2);
        assert_eq!(tail[0] >> 31, 1);
        assert_eq!(tail[1], 0);
    }

    #[test]
    fn gather_word_cross_boundary() {
        let slot = vec![0x8000_0000u32, 0x0000_0001u32];
        // Window bit 31 is set (end of word 0) and bit 32 (start of word 1).
        assert_eq!(gather_word(&slot, 31), 0b11);
        assert_eq!(gather_word(&slot, -1), 0x8000_0000u32 << 1);
        assert_eq!(gather_word(&slot, 64), 0);
        assert_eq!(gather_word(&slot, -32), 0);
    }

    #[test]
    fn missing_barrier_is_detected() {
        // Store then shifted-read with no barrier: the Fig. 6 hazard.
        let kernel = Kernel {
            stmts: vec![
                KStmt::Op(KOp::Const { dst: Reg(0), ones: true }),
                KStmt::Op(KOp::SmemStore { slot: Slot(0), src: Reg(0) }),
                KStmt::Op(KOp::ShiftRead { dst: Reg(1), slot: Slot(0), shift: 1 }),
            ],
            num_regs: 2,
            num_slots: 1,
            num_inputs: 0,
            num_outputs: 0,
            num_sites: 0,
        };
        let basis: [BitStream; 8] = std::array::from_fn(|_| BitStream::zeros(32));
        let mut cta = Cta::new(&kernel, 2);
        let mut c = CtaCounters::new(0);
        let err = cta
            .run_window(&kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .unwrap_err();
        assert!(err.to_string().contains("race"));
    }

    #[test]
    fn write_after_read_is_detected() {
        let kernel = Kernel {
            stmts: vec![
                KStmt::Op(KOp::Const { dst: Reg(0), ones: true }),
                KStmt::Op(KOp::SmemStore { slot: Slot(0), src: Reg(0) }),
                KStmt::Op(KOp::Barrier),
                KStmt::Op(KOp::ShiftRead { dst: Reg(1), slot: Slot(0), shift: 1 }),
                // Missing barrier here:
                KStmt::Op(KOp::SmemStore { slot: Slot(0), src: Reg(1) }),
            ],
            num_regs: 2,
            num_slots: 1,
            num_inputs: 0,
            num_outputs: 0,
            num_sites: 0,
        };
        let basis: [BitStream; 8] = std::array::from_fn(|_| BitStream::zeros(32));
        let mut cta = Cta::new(&kernel, 2);
        let mut c = CtaCounters::new(0);
        assert!(cta
            .run_window(&kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .is_err());
    }

    #[test]
    fn generated_kernels_pass_race_checking() {
        // Codegen's barrier placement must satisfy the checker for a
        // shift-heavy, rebalanced, guarded program.
        use bitgen_passes::{insert_zero_skips, rebalance, ZbsConfig};
        let mut prog = lower(&parse("ab{2,4}c(de)*f").unwrap());
        rebalance(&mut prog);
        insert_zero_skips(&mut prog, ZbsConfig::default());
        let compiled = compile(&prog, &[], &[], &CodegenOptions { merge_size: 4, ..CodegenOptions::default() });
        let basis = basis_for(b"abbcdedef abbbbcf");
        let mut cta = Cta::new(&compiled.kernel, 8);
        let mut c = CtaCounters::new(compiled.kernel.num_sites as usize);
        cta.run_window(&compiled.kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .expect("generated kernel must be race-free");
        assert!(c.barriers > 0);
    }

    #[test]
    fn counters_track_events() {
        let prog = lower(&parse("a(bc)*d").unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(b"abcbcd");
        let mut cta = Cta::new(&compiled.kernel, 2);
        let mut c = CtaCounters::new(compiled.kernel.num_sites as usize);
        cta.run_window(&compiled.kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .unwrap();
        assert!(c.alu_ops > 0);
        assert!(c.barriers >= 2);
        assert!(c.reductions >= 1);
        assert_eq!(c.window_iterations, 1);
        assert_eq!(c.loop_trips.len(), 1);
        assert!(c.loop_trips[0] >= 2, "two (bc) passes: {:?}", c.loop_trips);
        assert!(c.global_load_words > 0);
        assert!(c.global_store_words > 0);
    }

    #[test]
    fn unarmed_cta_never_fires() {
        let prog = lower(&parse("cat").unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(b"bobcat");
        let mut cta = Cta::new(&compiled.kernel, 2);
        let mut c = CtaCounters::new(0);
        cta.run_window(&compiled.kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .unwrap();
        assert!(!cta.fault_fired());
    }

    #[test]
    fn smem_flip_fires_once_and_changes_output() {
        // a(bc)*d routes data through shared memory (shifts), so a flipped
        // smem bit must perturb the output words of the faulted run.
        let prog = lower(&parse("a(bc)*d").unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(b"abcbcd");
        let run = |plan: Option<FaultPlan>| {
            let mut cta = Cta::new(&compiled.kernel, 2);
            if let Some(p) = plan {
                cta.arm_fault(p);
            }
            let mut c = CtaCounters::new(compiled.kernel.num_sites as usize);
            let out = cta
                .run_window(
                    &compiled.kernel,
                    WindowInputs { basis: &basis, globals: &[] },
                    0,
                    &mut c,
                )
                .unwrap();
            (out.words, cta.fault_fired())
        };
        let (clean, fired) = run(None);
        assert!(!fired);
        // A flip in a word past the input (or one the kernel masks off) is
        // harmless, so scan a few seeds: at least one must corrupt the
        // output, and every fired plan must replay identically.
        let mut corrupted = 0;
        for seed in 0..8 {
            let plan = FaultPlan { kind: FaultKind::SmemFlip, trigger: 1, seed };
            let (faulted, fired) = run(Some(plan));
            assert!(fired, "the kernel stores to smem, so trigger 1 must fire");
            assert_eq!(run(Some(plan)).0, faulted, "same plan must corrupt identically");
            if faulted != clean {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "no seed's smem flip reached the output");
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics_on_window_entry() {
        let prog = lower(&parse("cat").unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(b"bobcat");
        let mut cta = Cta::new(&compiled.kernel, 2);
        cta.arm_fault(FaultPlan { kind: FaultKind::Panic, trigger: 1, seed: 0 });
        let mut c = CtaCounters::new(0);
        let _ = cta.run_window(
            &compiled.kernel,
            WindowInputs { basis: &basis, globals: &[] },
            0,
            &mut c,
        );
    }

    #[test]
    fn counter_fault_inflates_window_iterations() {
        let prog = lower(&parse("cat").unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(b"bobcat");
        let mut cta = Cta::new(&compiled.kernel, 2);
        cta.arm_fault(FaultPlan { kind: FaultKind::CorruptCounter, trigger: 1, seed: 3 });
        let mut c = CtaCounters::new(0);
        cta.run_window(&compiled.kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .unwrap();
        assert!(cta.fault_fired());
        assert!(c.window_iterations > 1, "counter must be inflated past the true 1");
    }

    #[test]
    fn high_trigger_fault_never_fires() {
        let prog = lower(&parse("cat").unwrap());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        let basis = basis_for(b"bobcat");
        let mut cta = Cta::new(&compiled.kernel, 2);
        cta.arm_fault(FaultPlan { kind: FaultKind::Panic, trigger: 1000, seed: 0 });
        let mut c = CtaCounters::new(0);
        cta.run_window(&compiled.kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .unwrap();
        assert!(!cta.fault_fired());
    }

    #[test]
    fn skipped_ops_counted_for_guards() {
        use bitgen_passes::{insert_zero_skips, ZbsConfig};
        let mut prog = lower(&parse("abcdefgh").unwrap());
        insert_zero_skips(&mut prog, ZbsConfig::default());
        let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
        // Input with no 'a': guards fire.
        let basis = basis_for(b"zzzzzzzz");
        let mut cta = Cta::new(&compiled.kernel, 2);
        let mut c = CtaCounters::new(compiled.kernel.num_sites as usize);
        cta.run_window(&compiled.kernel, WindowInputs { basis: &basis, globals: &[] }, 0, &mut c)
            .unwrap();
        assert!(c.skipped_ops > 0, "guards should have skipped work");
    }
}

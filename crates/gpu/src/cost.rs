//! The device cost model: counted events → cycles → seconds → MB/s.
//!
//! Every quantity entering the model is *counted* by the CTA emulator
//! (ALU issues, shared-memory accesses, barriers, reductions, DRAM words);
//! the model only prices them using the device configuration and schedules
//! the CTAs across SMs. Relative results across schemes and devices derive
//! from the counts, not from tuned constants.

use crate::counters::CtaCounters;
use crate::device::DeviceConfig;

/// The work one CTA performed, plus its resource footprint (which limits
/// occupancy, the way the paper's *max register number* parameter does).
#[derive(Debug, Clone)]
pub struct CtaWork {
    /// Counted events.
    pub counters: CtaCounters,
    /// Threads in the CTA.
    pub threads: usize,
    /// Registers per thread of the kernel.
    pub regs_per_thread: u32,
    /// Shared-memory bytes per CTA.
    pub smem_bytes: usize,
}

/// Cost estimate for one kernel launch over a set of CTAs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostBreakdown {
    /// End-to-end seconds (max of compute makespan and DRAM time).
    pub seconds: f64,
    /// Compute makespan in seconds.
    pub compute_seconds: f64,
    /// DRAM-bound lower bound in seconds.
    pub memory_seconds: f64,
    /// Fraction of total CTA cycles spent stalled at barriers — the
    /// paper's "Barrier Stall (%)" of Table 6.
    pub barrier_stall_frac: f64,
    /// Resident CTAs per SM the launch achieved.
    pub occupancy: u32,
    /// Per-CTA cycle totals (diagnostics).
    pub cta_cycles: Vec<f64>,
}

impl DeviceConfig {
    /// Prices a launch of `ctas` on this device.
    ///
    /// Returns zeroed costs for an empty launch.
    pub fn estimate(&self, ctas: &[CtaWork]) -> CostBreakdown {
        if ctas.is_empty() {
            return CostBreakdown {
                seconds: 0.0,
                compute_seconds: 0.0,
                memory_seconds: 0.0,
                barrier_stall_frac: 0.0,
                occupancy: self.max_ctas_per_sm,
                cta_cycles: Vec::new(),
            };
        }
        let occupancy = self.occupancy(ctas);
        // Global-memory bandwidth one SM can draw, in bytes per core
        // cycle. Per-CTA traffic is served by L2 (all CTAs read the same
        // input stream in the MISD regime), which still makes
        // materialising intermediates expensive on the CTA's critical
        // path: a T-word ALU op costs a few cycles, a T-word global
        // access costs tens to hundreds — the paper's Table 4 effect.
        let sm_bytes_per_cycle =
            self.l2_bw_gbps * 1e9 / (self.sms as f64 * self.clock_ghz * 1e9);
        let mut cta_cycles = Vec::with_capacity(ctas.len());
        let mut barrier_cycles = Vec::with_capacity(ctas.len());
        let mut dram_bytes = 0u64;
        for cta in ctas {
            let t = cta.threads as f64;
            let c = &cta.counters;
            let alu = c.alu_ops as f64 * (t / self.int_lanes_per_sm as f64).ceil().max(1.0);
            let smem = c.smem_accesses() as f64 * (t / self.smem_banks as f64).ceil().max(1.0);
            // Co-resident CTAs hide barrier latency: that is what
            // occupancy (and hence the max-register parameter) buys.
            let barrier = c.barriers as f64 * self.barrier_cost_cycles / occupancy as f64;
            let reduce = c.reductions as f64 * self.reduce_cost_cycles / occupancy as f64;
            // Global traffic drains this SM's bandwidth share; co-resident
            // CTAs contend for it rather than hiding it.
            let glob = c.global_words() as f64 * 4.0 / sm_bytes_per_cycle;
            let cycles = alu + smem + barrier + reduce + glob;
            barrier_cycles.push(barrier);
            dram_bytes += c.global_words() * 4;
            cta_cycles.push(cycles);
        }
        // f64 addition is not associative, so the aggregate cycle totals
        // are summed in a canonical (sorted) order. Together with the
        // permutation-invariant LPT makespan below, this makes the whole
        // estimate independent of how callers ordered the CTAs — scan
        // sessions that assemble works from worker threads get the same
        // bits as a sequential scan.
        let barrier_cycles_total = sorted_sum(&barrier_cycles);
        let total_cycles = sorted_sum(&cta_cycles);
        let slots = (self.sms * occupancy) as usize;
        let makespan = lpt_makespan(&cta_cycles, slots);
        let clock_hz = self.clock_ghz * 1e9;
        let compute_seconds = makespan / clock_hz;
        // Device-wide bound: aggregate traffic through L2 (DRAM proper
        // only sees the shared input once, which is negligible).
        let memory_seconds = dram_bytes as f64 / (self.l2_bw_gbps * 1e9);
        CostBreakdown {
            seconds: compute_seconds.max(memory_seconds),
            compute_seconds,
            memory_seconds,
            barrier_stall_frac: if total_cycles > 0.0 {
                barrier_cycles_total / total_cycles
            } else {
                0.0
            },
            occupancy,
            cta_cycles,
        }
    }

    /// Resident CTAs per SM, limited by the hardware cap, shared memory,
    /// and the register file (the paper's max-register tuning knob).
    pub fn occupancy(&self, ctas: &[CtaWork]) -> u32 {
        let mut occ = self.max_ctas_per_sm;
        for cta in ctas {
            if let Some(fit) = self.smem_per_sm.checked_div(cta.smem_bytes) {
                occ = occ.min(fit.max(1) as u32);
            }
            let regs = cta.threads * cta.regs_per_thread as usize;
            if let Some(fit) = self.regs_per_sm.checked_div(regs) {
                occ = occ.min(fit.max(1) as u32);
            }
        }
        occ.max(1)
    }
}

/// Sums after sorting a copy ascending, so the result does not depend
/// on the order of `xs`.
fn sorted_sum(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v.iter().sum()
}

/// Longest-processing-time-first makespan over `slots` machines.
fn lpt_makespan(jobs: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1);
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[b].total_cmp(&jobs[a]));
    let mut load = vec![0.0f64; slots.min(jobs.len()).max(1)];
    for &j in &order {
        let min = load
            .iter_mut()
            .min_by(|a, b| a.total_cmp(b))
            .expect("at least one slot");
        *min += jobs[j];
    }
    load.into_iter().fold(0.0, f64::max)
}

/// Convenience: MB/s throughput for processing `input_bytes`.
pub fn throughput_mbps(input_bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    input_bytes as f64 / 1e6 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(alu: u64, barriers: u64) -> CtaWork {
        let mut c = CtaCounters::new(0);
        c.alu_ops = alu;
        c.barriers = barriers;
        c.global_load_words = 100;
        CtaWork { counters: c, threads: 512, regs_per_thread: 64, smem_bytes: 8192 }
    }

    #[test]
    fn more_work_costs_more() {
        let d = DeviceConfig::rtx3090();
        let small = d.estimate(&[work(1_000, 10)]);
        let large = d.estimate(&[work(100_000, 10)]);
        assert!(large.seconds > small.seconds);
    }

    #[test]
    fn barriers_add_stall() {
        let d = DeviceConfig::rtx3090();
        let none = d.estimate(&[work(10_000, 0)]);
        let many = d.estimate(&[work(10_000, 5_000)]);
        assert!(many.seconds > none.seconds);
        assert!(many.barrier_stall_frac > none.barrier_stall_frac);
        assert_eq!(none.barrier_stall_frac, 0.0);
    }

    #[test]
    fn parallel_ctas_scale_until_slots_full() {
        let d = DeviceConfig::rtx3090();
        let one = d.estimate(&[work(50_000, 10)]);
        let many: Vec<CtaWork> = (0..64).map(|_| work(50_000, 10)).collect();
        let est = d.estimate(&many);
        // 64 identical CTAs on 82 SMs: same makespan as one.
        assert!((est.compute_seconds - one.compute_seconds).abs() / one.compute_seconds < 0.01);
        let too_many: Vec<CtaWork> = (0..1000).map(|_| work(50_000, 10)).collect();
        let est2 = d.estimate(&too_many);
        assert!(est2.compute_seconds > est.compute_seconds);
    }

    #[test]
    fn faster_device_is_faster() {
        let jobs: Vec<CtaWork> = (0..256).map(|_| work(200_000, 100)).collect();
        let a = DeviceConfig::rtx3090().estimate(&jobs);
        let b = DeviceConfig::h100().estimate(&jobs);
        let c = DeviceConfig::l40s().estimate(&jobs);
        assert!(b.compute_seconds < a.compute_seconds);
        assert!(c.compute_seconds < b.compute_seconds);
        // Compute-bound work should track the TIOPS ratios.
        let r = a.compute_seconds / c.compute_seconds;
        assert!(r > 2.0 && r < 3.2, "3090/L40S ratio {r}");
    }

    #[test]
    fn occupancy_limited_by_smem() {
        let d = DeviceConfig::rtx3090();
        let mut w = work(1000, 10);
        w.smem_bytes = 60 * 1024; // only one fits in 100 KB
        assert_eq!(d.occupancy(&[w]), 1);
        let small = work(1000, 10);
        assert_eq!(d.occupancy(&[small]), 2); // 512 threads × 64 regs = 32k regs → 2
    }

    #[test]
    fn lpt_makespan_basics() {
        assert_eq!(lpt_makespan(&[3.0, 3.0, 3.0], 3), 3.0);
        assert_eq!(lpt_makespan(&[5.0, 1.0, 1.0], 2), 5.0);
        assert_eq!(lpt_makespan(&[2.0, 2.0], 1), 4.0);
        assert_eq!(lpt_makespan(&[], 4), 0.0);
    }

    #[test]
    fn estimate_is_permutation_invariant() {
        let d = DeviceConfig::rtx3090();
        // Unequal works so a naive left-to-right f64 sum would differ.
        let jobs: Vec<CtaWork> =
            (0..37).map(|i| work(10_000 + i * 7_919, 10 + i % 13)).collect();
        let base = d.estimate(&jobs);
        for rot in [1, 5, 18, 36] {
            let mut rotated = jobs.clone();
            rotated.rotate_left(rot);
            let est = d.estimate(&rotated);
            assert_eq!(est.seconds.to_bits(), base.seconds.to_bits(), "rot {rot}");
            assert_eq!(
                est.barrier_stall_frac.to_bits(),
                base.barrier_stall_frac.to_bits(),
                "rot {rot}"
            );
            assert_eq!(est.compute_seconds.to_bits(), base.compute_seconds.to_bits());
            assert_eq!(est.memory_seconds.to_bits(), base.memory_seconds.to_bits());
            assert_eq!(est.occupancy, base.occupancy);
        }
    }

    #[test]
    fn throughput_helper() {
        assert!((throughput_mbps(1_000_000, 0.001) - 1000.0).abs() < 1e-9);
        assert!(throughput_mbps(10, 0.0).is_infinite());
    }

    #[test]
    fn empty_launch_is_free() {
        let d = DeviceConfig::rtx3090();
        assert_eq!(d.estimate(&[]).seconds, 0.0);
    }
}

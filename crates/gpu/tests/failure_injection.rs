//! Failure injection: the emulator's race checker must catch barrier
//! omissions in otherwise-valid generated kernels — proving the checker
//! would catch a real codegen bug, not just the hand-built cases of the
//! unit tests.

use bitgen_bitstream::Basis;
use bitgen_gpu::{Cta, CtaCounters, WindowInputs};
use bitgen_ir::lower;
use bitgen_kernel::{compile, CodegenOptions, KOp, KStmt, Kernel};
use bitgen_regex::parse;

/// Deletes the `n`-th barrier (anywhere in the structure); returns `None`
/// when there are fewer barriers.
fn without_barrier(kernel: &Kernel, n: usize) -> Option<Kernel> {
    fn strip(stmts: &[KStmt], remaining: &mut isize) -> Vec<KStmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                KStmt::Op(KOp::Barrier) => {
                    if *remaining == 0 {
                        *remaining -= 1;
                        continue; // drop exactly this barrier
                    }
                    *remaining -= 1;
                    out.push(s.clone());
                }
                KStmt::Op(_) => out.push(s.clone()),
                KStmt::If { cond, body } => out.push(KStmt::If {
                    cond: *cond,
                    body: strip(body, remaining),
                }),
                KStmt::While { cond, body, site } => out.push(KStmt::While {
                    cond: *cond,
                    body: strip(body, remaining),
                    site: *site,
                }),
            }
        }
        out
    }
    let mut remaining = n as isize;
    let stmts = strip(&kernel.stmts, &mut remaining);
    if remaining >= 0 {
        return None; // fewer than n+1 barriers
    }
    Some(Kernel { stmts, ..kernel.clone() })
}

fn run(kernel: &Kernel, input: &[u8], threads: usize) -> Result<(), String> {
    let basis = Basis::transpose(input);
    let mut cta = Cta::new(kernel, threads);
    let mut counters = CtaCounters::new(kernel.num_sites as usize);
    // Two back-to-back windows, as in the real block loop: a trailing
    // barrier omission only races against the *next* iteration's stores.
    for start in [0i64, (threads * 32) as i64] {
        cta.run_window(
            kernel,
            WindowInputs { basis: basis.streams(), globals: &[] },
            start,
            &mut counters,
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[test]
fn intact_kernels_are_race_free() {
    for pat in ["abcdef", "a(bc)*d", "ab{2,4}c", "x[p-r]+y|zz"] {
        let prog = lower(&parse(pat).unwrap());
        for merge in [1, 4] {
            let compiled =
                compile(&prog, &[], &[], &CodegenOptions { merge_size: merge, ..Default::default() });
            run(&compiled.kernel, b"abcdef abcd abbc xqy zz", 4)
                .unwrap_or_else(|e| panic!("{pat:?} merge {merge}: {e}"));
        }
    }
}

#[test]
fn every_single_barrier_omission_is_caught() {
    // A shift-heavy kernel: removing *any* barrier must produce a race on
    // an input that exercises every shift group.
    let prog = lower(&parse("abcdef").unwrap());
    let compiled = compile(&prog, &[], &[], &CodegenOptions { merge_size: 2, ..Default::default() });
    let total = compiled.kernel.barrier_count();
    assert!(total >= 4, "expected several barriers, got {total}");
    let mut caught = 0;
    for n in 0..total {
        let mutated = without_barrier(&compiled.kernel, n).expect("barrier exists");
        assert_eq!(mutated.barrier_count(), total - 1);
        if run(&mutated, b"abcdefabcdef", 4).is_err() {
            caught += 1;
        }
    }
    assert_eq!(
        caught, total,
        "the race checker must flag every barrier omission ({caught}/{total})"
    );
}

#[test]
fn mutation_inside_loops_is_caught() {
    let prog = lower(&parse("a(bc)*d").unwrap());
    let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
    let total = compiled.kernel.barrier_count();
    let mut caught = 0;
    for n in 0..total {
        let mutated = without_barrier(&compiled.kernel, n).expect("barrier exists");
        if run(&mutated, b"abcbcd", 4).is_err() {
            caught += 1;
        }
    }
    assert_eq!(caught, total, "loop-body barriers are as load-bearing as any");
}

#[test]
fn stripping_past_the_end_returns_none() {
    let prog = lower(&parse("ab").unwrap());
    let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
    let total = compiled.kernel.barrier_count();
    assert!(without_barrier(&compiled.kernel, total).is_none());
}

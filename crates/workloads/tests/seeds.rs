//! Seed robustness: every application generator must produce valid,
//! witness-consistent workloads for arbitrary seeds — the harness lets
//! users pick any `--seed`, so no seed may generate an unparseable rule
//! or a witness that fails to match.

use bitgen_regex::match_ends;
use bitgen_workloads::{generate, AppKind, WorkloadConfig};

#[test]
fn many_seeds_generate_valid_workloads() {
    for seed in [0u64, 1, 7, 42, 0xdead_beef, u64::MAX] {
        for kind in AppKind::ALL {
            let w = generate(
                kind,
                &WorkloadConfig { regexes: 6, input_len: 2048, seed, ..Default::default() },
            );
            assert_eq!(w.asts.len(), 6, "{kind:?} seed {seed}");
            for (i, (ast, wit)) in w.asts.iter().zip(&w.witnesses).enumerate() {
                if wit.is_empty() {
                    continue;
                }
                let ends = match_ends(ast, wit);
                assert!(
                    ends.contains(&(wit.len() - 1)),
                    "{kind:?} seed {seed} rule {i}: witness does not match {:?}",
                    w.patterns[i]
                );
            }
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = generate(
        AppKind::Yara,
        &WorkloadConfig { regexes: 6, input_len: 2048, seed: 1, ..Default::default() },
    );
    let b = generate(
        AppKind::Yara,
        &WorkloadConfig { regexes: 6, input_len: 2048, seed: 2, ..Default::default() },
    );
    assert_ne!(a.patterns, b.patterns);
    assert_ne!(a.input, b.input);
}

#[test]
fn zero_witness_density_plants_nothing() {
    // With density 0 the input is pure noise; rules may still match by
    // accident, but generation itself must hold up.
    for kind in AppKind::ALL {
        let w = generate(
            kind,
            &WorkloadConfig {
                regexes: 4,
                input_len: 1024,
                witness_density: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(w.input.len(), 1024, "{kind:?}");
    }
}

//! Random pattern construction.
//!
//! Each generator builds a regex string together with one *witness*: a
//! concrete string the regex matches. Witnesses are planted into the
//! generated inputs at a controlled density, guaranteeing real matches
//! without ever running an engine during generation.

use rand::rngs::SmallRng;
use rand::Rng;

/// The identity of one generated corpus: every parameter that
/// determined its bytes. Generators are seeded and deterministic, so
/// two workloads with equal metadata are byte-identical — a trajectory
/// entry recording a [`WorkloadMeta::signature`] names exactly the
/// corpus it measured, reproducible on any host.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMeta {
    /// Application name (lowercased [`crate::AppKind`] name).
    pub app: String,
    /// Number of generated rules.
    pub regexes: usize,
    /// Input length in bytes.
    pub input_len: usize,
    /// RNG seed the generator ran under.
    pub seed: u64,
    /// Requested fraction of input bytes coming from planted witnesses.
    pub witness_density: f64,
}

impl WorkloadMeta {
    /// Compact one-token signature, e.g. `tcp/r16/i65536/d0.050/s0xb17`
    /// — the workload identifier `BENCH_*.json` entries record.
    pub fn signature(&self) -> String {
        format!(
            "{}/r{}/i{}/d{:.3}/s{:#x}",
            self.app, self.regexes, self.input_len, self.witness_density, self.seed
        )
    }
}

/// A regex under construction, paired with a matching witness.
#[derive(Debug, Clone, Default)]
pub struct PatternBuilder {
    regex: String,
    witness: Vec<u8>,
}

impl PatternBuilder {
    /// Creates an empty builder.
    pub fn new() -> PatternBuilder {
        PatternBuilder::default()
    }

    /// The regex source built so far.
    pub fn regex(&self) -> &str {
        &self.regex
    }

    /// Finishes, returning `(regex, witness)`.
    pub fn finish(self) -> (String, Vec<u8>) {
        (self.regex, self.witness)
    }

    /// Appends a literal string (escaped as needed).
    pub fn literal(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.regex.push_str(&escape_byte(b));
            self.witness.push(b);
        }
        self
    }

    /// Appends a random literal of `len` bytes drawn from `alphabet`.
    pub fn random_literal(&mut self, rng: &mut SmallRng, alphabet: &[u8], len: usize) -> &mut Self {
        for _ in 0..len {
            let b = alphabet[rng.random_range(0..alphabet.len())];
            self.regex.push_str(&escape_byte(b));
            self.witness.push(b);
        }
        self
    }

    /// Appends a character range `[lo-hi]`, witnessing a random member.
    pub fn range_class(&mut self, rng: &mut SmallRng, lo: u8, hi: u8) -> &mut Self {
        assert!(lo <= hi);
        self.regex.push_str(&format!("[{}-{}]", escape_in_class(lo), escape_in_class(hi)));
        self.witness.push(rng.random_range(lo..=hi));
        self
    }

    /// Appends `.` (any byte but newline), witnessing a given filler.
    pub fn dot(&mut self, witness: u8) -> &mut Self {
        debug_assert_ne!(witness, b'\n');
        self.regex.push('.');
        self.witness.push(witness);
        self
    }

    /// Appends a bounded repetition `(...){min,max}` of a literal piece,
    /// witnessing `min` copies.
    pub fn bounded_repeat(
        &mut self,
        rng: &mut SmallRng,
        alphabet: &[u8],
        piece_len: usize,
        min: u32,
        max: u32,
    ) -> &mut Self {
        let mut piece = PatternBuilder::new();
        piece.random_literal(rng, alphabet, piece_len);
        let (re, wit) = piece.finish();
        if piece_len == 1 {
            self.regex.push_str(&format!("{re}{{{min},{max}}}"));
        } else {
            self.regex.push_str(&format!("(?:{re}){{{min},{max}}}"));
        }
        for _ in 0..min {
            self.witness.extend_from_slice(&wit);
        }
        self
    }

    /// Appends a Kleene star over a short literal piece, witnessing
    /// `copies` repetitions (this is what produces `while` loops).
    pub fn star_piece(
        &mut self,
        rng: &mut SmallRng,
        alphabet: &[u8],
        piece_len: usize,
        copies: usize,
    ) -> &mut Self {
        let mut piece = PatternBuilder::new();
        piece.random_literal(rng, alphabet, piece_len);
        let (re, wit) = piece.finish();
        if piece_len == 1 {
            self.regex.push_str(&format!("{re}*"));
        } else {
            self.regex.push_str(&format!("(?:{re})*"));
        }
        for _ in 0..copies {
            self.witness.extend_from_slice(&wit);
        }
        self
    }

    /// Appends a star over a character range (e.g. `[a-z]*`), witnessing
    /// `copies` random members.
    pub fn star_class(
        &mut self,
        rng: &mut SmallRng,
        lo: u8,
        hi: u8,
        copies: usize,
    ) -> &mut Self {
        self.regex.push_str(&format!("[{}-{}]*", escape_in_class(lo), escape_in_class(hi)));
        for _ in 0..copies {
            self.witness.push(rng.random_range(lo..=hi));
        }
        self
    }

    /// Appends a bounded wildcard gap `.{0,max}` (the form ClamAV-style
    /// signatures use), witnessing `copies` filler bytes.
    ///
    /// # Panics
    ///
    /// Panics if `copies > max`.
    pub fn dot_gap(&mut self, filler: u8, max: u32, copies: usize) -> &mut Self {
        assert!(copies as u32 <= max);
        debug_assert_ne!(filler, b'\n');
        self.regex.push_str(&format!(".{{0,{max}}}"));
        self.witness.extend(std::iter::repeat_n(filler, copies));
        self
    }

    /// Appends `.*`, witnessing `copies` filler bytes.
    pub fn dot_star(&mut self, filler: u8, copies: usize) -> &mut Self {
        debug_assert_ne!(filler, b'\n');
        self.regex.push_str(".*");
        self.witness.extend(std::iter::repeat_n(filler, copies));
        self
    }

    /// Appends an alternation of random literals, witnessing the first.
    pub fn alternation(
        &mut self,
        rng: &mut SmallRng,
        alphabet: &[u8],
        branches: usize,
        branch_len: usize,
    ) -> &mut Self {
        assert!(branches >= 2);
        let mut first_wit: Option<Vec<u8>> = None;
        self.regex.push_str("(?:");
        for i in 0..branches {
            if i > 0 {
                self.regex.push('|');
            }
            let mut piece = PatternBuilder::new();
            piece.random_literal(rng, alphabet, branch_len);
            let (re, wit) = piece.finish();
            self.regex.push_str(&re);
            if first_wit.is_none() {
                first_wit = Some(wit);
            }
        }
        self.regex.push(')');
        self.witness.extend(first_wit.expect("at least one branch"));
        self
    }

    /// Appends an optional piece (witnessing its absence).
    pub fn optional_class(&mut self, lo: u8, hi: u8) -> &mut Self {
        self.regex.push_str(&format!("[{}-{}]?", escape_in_class(lo), escape_in_class(hi)));
        self
    }
}

/// Escapes a byte for use outside character classes.
pub fn escape_byte(b: u8) -> String {
    match b {
        b'\n' => r"\n".to_string(),
        b'\r' => r"\r".to_string(),
        b'\t' => r"\t".to_string(),
        _ if br".+*?()|[]{}^$\".contains(&b) => format!("\\{}", b as char),
        _ if b.is_ascii_graphic() || b == b' ' => (b as char).to_string(),
        _ => format!("\\x{b:02x}"),
    }
}

fn escape_in_class(b: u8) -> String {
    match b {
        b']' | b'\\' | b'^' | b'-' => format!("\\{}", b as char),
        _ if b.is_ascii_graphic() => (b as char).to_string(),
        _ => format!("\\x{b:02x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_regex::{match_ends, parse};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    /// Every builder combination must produce a regex whose witness
    /// actually matches.
    fn assert_witness_matches(b: PatternBuilder) {
        let (re, wit) = b.finish();
        let ast = parse(&re).unwrap_or_else(|e| panic!("generated {re:?} fails to parse: {e}"));
        if wit.is_empty() {
            return;
        }
        let ends = match_ends(&ast, &wit);
        assert!(
            ends.contains(&(wit.len() - 1)),
            "witness {:?} does not match {re:?} to its end (ends: {ends:?})",
            String::from_utf8_lossy(&wit)
        );
    }

    #[test]
    fn literal_witness() {
        let mut b = PatternBuilder::new();
        b.literal(b"GET /index.html");
        assert_witness_matches(b);
    }

    #[test]
    fn binary_literal_escapes() {
        let mut b = PatternBuilder::new();
        b.literal(&[0x00, 0xff, b'\n', b'[', b'\\']);
        assert_witness_matches(b);
    }

    #[test]
    fn mixed_builders_witness() {
        let mut r = rng();
        let mut b = PatternBuilder::new();
        b.random_literal(&mut r, b"abcdef", 4)
            .range_class(&mut r, b'0', b'9')
            .bounded_repeat(&mut r, b"xy", 1, 2, 5)
            .star_piece(&mut r, b"mn", 2, 3)
            .optional_class(b'a', b'c')
            .literal(b"end");
        assert_witness_matches(b);
    }

    #[test]
    fn alternation_witness() {
        let mut r = rng();
        let mut b = PatternBuilder::new();
        b.alternation(&mut r, b"qrst", 4, 3).literal(b"!");
        assert_witness_matches(b);
    }

    #[test]
    fn dot_star_witness() {
        let mut b = PatternBuilder::new();
        b.literal(b"A").dot_star(b'_', 5).literal(b"B");
        assert_witness_matches(b);
    }

    #[test]
    fn star_class_witness() {
        let mut r = rng();
        let mut b = PatternBuilder::new();
        b.literal(b"x").star_class(&mut r, b'a', b'z', 4).literal(b"y");
        assert_witness_matches(b);
    }

    #[test]
    fn determinism_under_seed() {
        let build = || {
            let mut r = SmallRng::seed_from_u64(7);
            let mut b = PatternBuilder::new();
            b.random_literal(&mut r, b"abc", 8).range_class(&mut r, b'0', b'9');
            b.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn workload_meta_signature_is_stable() {
        let meta = WorkloadMeta {
            app: "tcp".to_string(),
            regexes: 16,
            input_len: 65536,
            seed: 0xb17,
            witness_density: 0.05,
        };
        assert_eq!(meta.signature(), "tcp/r16/i65536/d0.050/s0xb17");
    }

    #[test]
    fn escape_byte_forms() {
        assert_eq!(escape_byte(b'a'), "a");
        assert_eq!(escape_byte(b'.'), r"\.");
        assert_eq!(escape_byte(0x07), r"\x07");
        assert_eq!(escape_byte(b'\n'), r"\n");
    }
}

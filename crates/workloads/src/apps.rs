//! The ten evaluation applications, generated synthetically.
//!
//! The paper's rule sets (AutomataZoo / ANMLZoo / Becchi's Regex suite)
//! are not redistributable here, so each application is reproduced by a
//! seeded generator that matches its *structural signature* from Table 1:
//! rule counts and lengths (scaled by configuration), operator mix
//! (literal-heavy Yara/ExactMatch, `while`-heavy Brill, `.*`-joined
//! Dotstar, alternation-heavy Protomata, long binary signatures ClamAV),
//! and an input generator with planted witnesses at a controlled density.

use crate::gen::{PatternBuilder, WorkloadMeta};
use bitgen_regex::{parse, Ast};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One of the ten paper applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AppKind {
    Brill,
    ClamAv,
    Dotstar,
    Protomata,
    Snort,
    Yara,
    Bro217,
    ExactMatch,
    Ranges1,
    Tcp,
}

impl AppKind {
    /// All applications in the paper's table order.
    pub const ALL: [AppKind; 10] = [
        AppKind::Brill,
        AppKind::ClamAv,
        AppKind::Dotstar,
        AppKind::Protomata,
        AppKind::Snort,
        AppKind::Yara,
        AppKind::Bro217,
        AppKind::ExactMatch,
        AppKind::Ranges1,
        AppKind::Tcp,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Brill => "Brill",
            AppKind::ClamAv => "ClamAV",
            AppKind::Dotstar => "Dotstar",
            AppKind::Protomata => "Protomata",
            AppKind::Snort => "Snort",
            AppKind::Yara => "Yara",
            AppKind::Bro217 => "Bro217",
            AppKind::ExactMatch => "ExactMatch",
            AppKind::Ranges1 => "Ranges1",
            AppKind::Tcp => "TCP",
        }
    }

    /// `(rule count, average pattern chars)` of the paper's Table 1, for
    /// side-by-side reporting.
    pub fn paper_stats(self) -> (usize, f64) {
        match self {
            AppKind::Brill => (1849, 44.4),
            AppKind::ClamAv => (491, 359.7),
            AppKind::Dotstar => (1279, 52.8),
            AppKind::Protomata => (2338, 96.5),
            AppKind::Snort => (1873, 50.5),
            AppKind::Yara => (3358, 32.5),
            AppKind::Bro217 => (227, 34.1),
            AppKind::ExactMatch => (298, 52.9),
            AppKind::Ranges1 => (298, 54.3),
            AppKind::Tcp => (300, 53.9),
        }
    }

    /// Noise alphabet of this application's input.
    fn noise_alphabet(self) -> &'static [u8] {
        match self {
            AppKind::Brill => b"abcdefghijklmnopqrstuvwxyz    ",
            AppKind::ClamAv | AppKind::Yara => BINARY,
            AppKind::Dotstar => b"abcdefghijklmnopqrstuvwxyz0123456789 ",
            AppKind::Protomata => AMINO,
            AppKind::Snort | AppKind::Bro217 | AppKind::Tcp => {
                b"abcdefghijklmnopqrstuvwxyz0123456789 /:.-_" as &[u8]
            }
            AppKind::ExactMatch | AppKind::Ranges1 => b"abcdefghijklmnopqrstuvwxyz0123456789",
        }
    }

    /// Whether the input is line-structured (newlines matter to `.*`).
    fn line_structured(self) -> bool {
        matches!(self, AppKind::Dotstar | AppKind::Brill | AppKind::Bro217)
    }
}

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
const BINARY: &[u8] = &{
    let mut a = [0u8; 64];
    let mut i = 0;
    while i < 64 {
        a[i] = (i * 4 + 1) as u8;
        i += 1;
    }
    a
};

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of regexes to generate (the paper's counts are in
    /// [`AppKind::paper_stats`]; defaults are scaled down for emulation).
    pub regexes: usize,
    /// Input length in bytes.
    pub input_len: usize,
    /// RNG seed: equal seeds give byte-identical workloads.
    pub seed: u64,
    /// Approximate fraction of input bytes coming from planted witnesses.
    pub witness_density: f64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig { regexes: 64, input_len: 1 << 16, seed: 0xb17, witness_density: 0.05 }
    }
}

/// A generated application: rules plus a matching input.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which application this mimics.
    pub kind: AppKind,
    /// Regex sources.
    pub patterns: Vec<String>,
    /// Parsed rules.
    pub asts: Vec<Ast>,
    /// One witness (matching string) per rule.
    pub witnesses: Vec<Vec<u8>>,
    /// The generated input stream.
    pub input: Vec<u8>,
    /// The generation parameters that produced this corpus.
    pub meta: WorkloadMeta,
}

impl Workload {
    /// Average pattern length in characters.
    pub fn avg_pattern_len(&self) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        self.patterns.iter().map(String::len).sum::<usize>() as f64 / self.patterns.len() as f64
    }

    /// Standard deviation of pattern lengths.
    pub fn pattern_len_sd(&self) -> f64 {
        let avg = self.avg_pattern_len();
        if self.patterns.len() < 2 {
            return 0.0;
        }
        let var = self
            .patterns
            .iter()
            .map(|p| (p.len() as f64 - avg).powi(2))
            .sum::<f64>()
            / self.patterns.len() as f64;
        var.sqrt()
    }
}

/// Generates an application workload.
///
/// # Examples
///
/// ```
/// use bitgen_workloads::{generate, AppKind, WorkloadConfig};
///
/// let config = WorkloadConfig { regexes: 8, input_len: 4096, ..WorkloadConfig::default() };
/// let w = generate(AppKind::Snort, &config);
/// assert_eq!(w.asts.len(), 8);
/// assert_eq!(w.input.len(), 4096);
/// // The metadata names exactly this corpus: same signature, same bytes.
/// assert_eq!(w.meta.signature(), generate(AppKind::Snort, &config).meta.signature());
/// ```
pub fn generate(kind: AppKind, config: &WorkloadConfig) -> Workload {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ (kind as u64) << 32);
    let mut patterns = Vec::with_capacity(config.regexes);
    let mut asts = Vec::with_capacity(config.regexes);
    let mut witnesses = Vec::with_capacity(config.regexes);
    for _ in 0..config.regexes {
        let (re, wit) = gen_rule(kind, &mut rng);
        let ast = parse(&re).unwrap_or_else(|e| panic!("generator for {kind:?} emitted bad regex {re:?}: {e}"));
        patterns.push(re);
        asts.push(ast);
        witnesses.push(wit);
    }
    let input = gen_input(kind, &witnesses, config, &mut rng);
    let meta = WorkloadMeta {
        app: kind.name().to_lowercase(),
        regexes: config.regexes,
        input_len: config.input_len,
        seed: config.seed,
        witness_density: config.witness_density,
    };
    Workload { kind, patterns, asts, witnesses, input, meta }
}

fn gen_rule(kind: AppKind, rng: &mut SmallRng) -> (String, Vec<u8>) {
    let mut b = PatternBuilder::new();
    match kind {
        AppKind::Brill => {
            // Tagger-style rules: words separated by class-star gaps —
            // several `while` loops per rule.
            let words = rng.random_range(3..=5);
            for w in 0..words {
                if w > 0 {
                    b.literal(b" ");
                    let n = rng.random_range(0..3);

                    b.star_class(rng, b'a', b'z', n);
                    b.literal(b" ");
                }
                let n = rng.random_range(3..=6);

                b.random_literal(rng, b"abcdefghijklmnop", n);
                let n = rng.random_range(0..2);

                b.star_class(rng, b'a', b'z', n);
            }
        }
        AppKind::ClamAv => {
            // Long virus byte signatures with bounded gaps and an
            // occasional unbounded wildcard gap (ClamAV's `*`).
            let chunks = rng.random_range(2..=3);
            for c in 0..chunks {
                if c > 0 {
                    let n = rng.random_range(2..=6);

                    b.bounded_repeat(rng, BINARY, 1, 0, n);
                }
                let n = rng.random_range(18..=40);

                b.random_literal(rng, BINARY, n);
            }
            if rng.random_bool(0.3) {
                // ClamAV `{0-12}` style bounded wildcard gap: binary
                // inputs have no newlines, so an unbounded `.*` would be
                // the paper's §8.2 pathological single-line case.
                let copies = rng.random_range(0..4);
                b.dot_gap(33, 12, copies);
                let n = rng.random_range(8..=16);
                b.random_literal(rng, BINARY, n);
            }
        }
        AppKind::Dotstar => {
            // LIT.*LIT (sometimes a third piece).
            let n = rng.random_range(8..=14);

            b.random_literal(rng, b"abcdefgh", n);
            b.dot_star(b'q', rng.random_range(0..6));
            let n = rng.random_range(8..=14);

            b.random_literal(rng, b"mnopqrst", n);
            if rng.random_bool(0.45) {
                b.dot_star(b'q', rng.random_range(0..4));
                let n = rng.random_range(6..=12);

                b.random_literal(rng, b"uvwxyz", n);
            }
        }
        AppKind::Protomata => {
            // Protein motifs: many classes and alternations.
            let elements = rng.random_range(8..=14);
            for _ in 0..elements {
                match rng.random_range(0..4) {
                    0 => {
                        let lo = AMINO[rng.random_range(0..AMINO.len() - 4)];
                        b.range_class(rng, lo, lo + 4);
                    }
                    1 => {
                        let n = rng.random_range(2..=3);

                        b.alternation(rng, AMINO, n, 1);
                    }
                    2 => {
                        let n = rng.random_range(2..=3);

                        b.bounded_repeat(rng, AMINO, 1, 1, n);
                    }
                    _ => {
                        let n = rng.random_range(1..=3);

                        b.random_literal(rng, AMINO, n);
                    }
                }
            }
        }
        AppKind::Snort => {
            // Attack signatures: literal head, class/bounded middle, and
            // a star on a quarter of the rules.
            let n = rng.random_range(5..=10);

            b.random_literal(rng, b"abcdefghij/:._", n);
            b.range_class(rng, b'0', b'9');
            let n = rng.random_range(2..=4);

            b.bounded_repeat(rng, b"0123456789", 1, 1, n);
            if rng.random_bool(0.25) {
                let n = rng.random_range(0..3);

                b.star_class(rng, b'a', b'f', n);
            }
            let n = rng.random_range(4..=8);

            b.random_literal(rng, b"klmnopqrstuv", n);
        }
        AppKind::Yara => {
            // Malware byte patterns: literals with fixed repeats, no
            // loops.
            let n = rng.random_range(10..=20);

            b.random_literal(rng, BINARY, n);
            if rng.random_bool(0.4) {
                b.bounded_repeat(rng, BINARY, 1, 2, 2);
            }
            let n = rng.random_range(6..=14);

            b.random_literal(rng, BINARY, n);
        }
        AppKind::Bro217 => {
            // HTTP-ish keywords.
            let verbs: [&[u8]; 4] = [b"get ", b"post ", b"head ", b"user-"];
            let verb = verbs[rng.random_range(0..4)];
            b.literal(verb);
            let n = rng.random_range(4..=14);

            b.random_literal(rng, b"abcdefghijklm/._", n);
            if rng.random_bool(0.3) {
                b.range_class(rng, b'0', b'9');
            }
        }
        AppKind::ExactMatch => {
            let n = rng.random_range(40..=60);

            b.random_literal(rng, b"abcdefghijklmnopqrstuvwxyz0123456789", n);
        }
        AppKind::Ranges1 => {
            // ExactMatch with ~30% of positions widened to ranges, plus a
            // star on most rules.
            let len = rng.random_range(16..=28);
            for _ in 0..len {
                if rng.random_bool(0.3) {
                    let lo = rng.random_range(b'a'..=b'q');
                    let n = rng.random_range(3..=8);

                    b.range_class(rng, lo, lo + n);
                } else {
                    b.random_literal(rng, b"abcdefghijklmnopqrstuvwxyz", 1);
                }
            }
            if rng.random_bool(0.8) {
                let n = rng.random_range(0..3);

                b.star_class(rng, b'0', b'9', n);
                b.random_literal(rng, b"abcdef", 2);
            }
        }
        AppKind::Tcp => {
            // Protocol headers: keyword, digits, separator, keyword.
            let n = rng.random_range(4..=8);

            b.random_literal(rng, b"abcdefghijklmnopqrstuvwxyz", n);
            b.literal(b":");
            b.bounded_repeat(rng, b"0123456789", 1, 1, 4);
            b.literal(b" ");
            let n = rng.random_range(6..=12);

            b.random_literal(rng, b"abcdefghijklmnopqrstuvwxyz./", n);
            if rng.random_bool(0.5) {
                b.optional_class(b'0', b'9');
            }
            if rng.random_bool(0.25) {
                let n = rng.random_range(0..2);

                b.star_class(rng, b'a', b'z', n);
            }
        }
    }
    b.finish()
}

fn gen_input(
    kind: AppKind,
    witnesses: &[Vec<u8>],
    config: &WorkloadConfig,
    rng: &mut SmallRng,
) -> Vec<u8> {
    let len = config.input_len;
    let noise = kind.noise_alphabet();
    let mut out: Vec<u8> = Vec::with_capacity(len + 64);
    let mut since_newline = 0usize;
    while out.len() < len {
        let plant = !witnesses.is_empty()
            && rng.random_bool(config.witness_density.clamp(0.0, 1.0));
        if plant {
            let w = &witnesses[rng.random_range(0..witnesses.len())];
            out.extend_from_slice(w);
            since_newline += w.len();
        } else {
            for _ in 0..16 {
                out.push(noise[rng.random_range(0..noise.len())]);
            }
            since_newline += 16;
        }
        if kind.line_structured() && since_newline >= 64 {
            out.push(b'\n');
            since_newline = 0;
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_ir::{lower_group, ProgramStats};

    fn small(kind: AppKind) -> Workload {
        generate(kind, &WorkloadConfig { regexes: 12, input_len: 4096, ..Default::default() })
    }

    #[test]
    fn all_apps_generate_and_parse() {
        for kind in AppKind::ALL {
            let w = small(kind);
            assert_eq!(w.asts.len(), 12, "{kind:?}");
            assert_eq!(w.input.len(), 4096);
            assert!(w.avg_pattern_len() > 4.0, "{kind:?} avg {}", w.avg_pattern_len());
        }
    }

    #[test]
    fn witnesses_match_their_rules() {
        for kind in AppKind::ALL {
            let w = small(kind);
            for (ast, wit) in w.asts.iter().zip(&w.witnesses) {
                if wit.is_empty() {
                    continue;
                }
                let ends = bitgen_regex::match_ends(ast, wit);
                assert!(
                    ends.contains(&(wit.len() - 1)),
                    "{kind:?}: witness does not match its rule"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small(AppKind::Snort);
        let b = small(AppKind::Snort);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.input, b.input);
        let c = generate(
            AppKind::Snort,
            &WorkloadConfig { regexes: 12, input_len: 4096, seed: 1, ..Default::default() },
        );
        assert_ne!(a.patterns, c.patterns);
    }

    #[test]
    fn instruction_mix_signatures() {
        // The Table 1 shape: Brill while-heavy, Yara while-free,
        // Protomata or-heavy relative to Yara.
        let stats = |kind: AppKind| {
            let w = small(kind);
            ProgramStats::of(&lower_group(&w.asts))
        };
        let brill = stats(AppKind::Brill);
        let yara = stats(AppKind::Yara);
        let protomata = stats(AppKind::Protomata);
        let exact = stats(AppKind::ExactMatch);
        assert!(brill.r#while >= 12, "Brill should be while-heavy: {brill}");
        assert_eq!(yara.r#while, 0, "Yara has (almost) no loops: {yara}");
        assert_eq!(exact.r#while, 0);
        assert!(
            (protomata.or as f64 / protomata.and as f64)
                > (yara.or as f64 / yara.and as f64),
            "Protomata is alternation-heavy: {protomata} vs {yara}"
        );
    }

    #[test]
    fn inputs_contain_planted_matches() {
        // With witnesses planted, at least one rule should fire.
        for kind in [AppKind::ExactMatch, AppKind::Dotstar, AppKind::Tcp] {
            let w = generate(
                kind,
                &WorkloadConfig {
                    regexes: 6,
                    input_len: 8192,
                    witness_density: 0.2,
                    ..Default::default()
                },
            );
            let total: usize = w
                .asts
                .iter()
                .map(|a| bitgen_regex::match_ends(a, &w.input).len())
                .sum();
            assert!(total > 0, "{kind:?}: planted witnesses should match");
        }
    }

    #[test]
    fn line_structured_inputs_have_newlines() {
        let w = small(AppKind::Dotstar);
        assert!(w.input.contains(&b'\n'));
        let y = small(AppKind::Yara);
        // Binary noise may contain 0x0a only by alphabet accident; the
        // generator itself adds none.
        assert!(!AppKind::Yara.line_structured());
        drop(y);
    }

    #[test]
    fn paper_stats_table() {
        assert_eq!(AppKind::Brill.paper_stats().0, 1849);
        assert_eq!(AppKind::ALL.len(), 10);
        let names: Vec<&str> = AppKind::ALL.iter().map(|k| k.name()).collect();
        assert!(names.contains(&"ClamAV") && names.contains(&"TCP"));
    }
}

//! Synthetic benchmark workloads for BitGen.
//!
//! Seeded generators reproduce the *structural signatures* of the paper's
//! ten evaluation applications (Table 1) — rule counts, length
//! distributions, and operator mixes — together with inputs in which each
//! rule's witness strings are planted at a controlled density. See
//! DESIGN.md for the substitution rationale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apps;
mod gen;

pub use apps::{generate, AppKind, Workload, WorkloadConfig};
pub use gen::{escape_byte, PatternBuilder, WorkloadMeta};

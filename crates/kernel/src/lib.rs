//! Kernel IR and code generation for BitGen's simulated GPU.
//!
//! Bitstream programs (after the `bitgen-passes` transforms) are compiled
//! here into the [`Kernel`] IR — the per-CTA device function the paper
//! generates as CUDA. Compilation performs the paper's §5.3: every shift
//! becomes a shared-memory store / barrier / shifted read / barrier
//! sequence, and a greedy scheduler merges shifts into groups that share
//! one barrier pair (bounded by the *merge size* parameter), storing each
//! distinct source only once.
//!
//! [`emit_cuda`] renders the kernel as pseudo-CUDA for inspection; the
//! `bitgen-gpu` crate executes the IR directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codegen;
mod emit;
mod kir;

pub use codegen::{compile, CodegenOptions, CodegenStats, Compiled};
pub use emit::emit_cuda;
pub use kir::{KOp, KStmt, Kernel, Reg, Slot, WORD_BITS};

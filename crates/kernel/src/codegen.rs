//! Kernel generation from bitstream programs, including the paper's §5.3:
//! scheduling SHIFT instructions and merging their barriers.
//!
//! Every IR shift becomes the smem-store / barrier / shifted-read /
//! barrier sequence of Fig. 9. The scheduler walks each straight-line run
//! of instructions and greedily merges a shift into the group anchored at
//! a preceding shift when (1) its operand is already available at the
//! anchor, (2) the group has fewer than `merge_size` members, and (3)
//! hoisting cannot be observed (the destination is a single-definition
//! temporary unused before its original position). Merged shifts share one
//! barrier pair, and shifts of the same source share one shared-memory
//! copy (the paper's redundant-copy elimination).

use crate::kir::{KOp, KStmt, Kernel, Reg, Slot};
use bitgen_bitstream::{compile_class, CcExpr};
use bitgen_ir::{DefUse, Op, Program, Stmt, StreamId};
use std::collections::HashMap;

/// Options controlling kernel generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Maximum number of SHIFT instructions sharing one barrier pair — the
    /// paper's *merge size* (Fig. 13 sweeps 1, 4, 16, 32; default 8).
    pub merge_size: usize,
    /// Share common sub-circuits across the character classes of a block
    /// (Parabix performs the same global CSE when emitting class code).
    /// On by default; disable for the ablation.
    pub class_cse: bool,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions { merge_size: 8, class_cse: true }
    }
}

/// Compile-time statistics of one generated kernel (Table 6 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodegenStats {
    /// Shift groups emitted; each costs one barrier pair per execution.
    pub shift_groups: usize,
    /// Total shifts compiled.
    pub shifts: usize,
    /// Shared-memory stores eliminated because a group reused one source.
    pub smem_copies_saved: usize,
    /// Circuit gates eliminated by cross-class CSE.
    pub gates_shared: usize,
}

/// Result of compiling one program into a kernel.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The kernel.
    pub kernel: Kernel,
    /// Scheduling statistics.
    pub stats: CodegenStats,
}

/// Compiles `program` into a [`Kernel`].
///
/// `inputs` are streams whose values are loaded from global memory
/// (materialised by an earlier segment, in segmented execution);
/// `outputs` are streams stored back per window. Outputs default to the
/// program's own outputs when empty.
///
/// # Examples
///
/// ```
/// use bitgen_regex::parse;
/// use bitgen_ir::lower;
/// use bitgen_kernel::{compile, CodegenOptions};
///
/// let prog = lower(&parse("ab").unwrap());
/// let compiled = compile(&prog, &[], &[], &CodegenOptions::default());
/// assert!(compiled.kernel.barrier_count() >= 2);
/// assert_eq!(compiled.kernel.num_outputs, 1);
/// ```
pub fn compile(
    program: &Program,
    inputs: &[StreamId],
    outputs: &[StreamId],
    options: &CodegenOptions,
) -> Compiled {
    let outputs: Vec<StreamId> =
        if outputs.is_empty() { program.outputs().to_vec() } else { outputs.to_vec() };
    let mut cg = Codegen {
        du: DefUse::of(program),
        options: *options,
        basis_reg_base: program.num_streams(),
        scratch_base: program.num_streams() + 8,
        scratch_used: 0,
        num_slots: 0,
        num_sites: 0,
        cse_regs: 0,
        stats: CodegenStats::default(),
        circuit_cache: HashMap::new(),
    };
    let mut stmts = Vec::new();
    // Preload the basis words used by the program's classes.
    let mut basis_used = [false; 8];
    for class in program.classes() {
        mark_basis(&compile_class(&class), &mut basis_used);
    }
    for (bit, used) in basis_used.iter().enumerate() {
        if *used {
            stmts.push(KStmt::Op(KOp::LoadBasis {
                dst: Reg(cg.basis_reg_base + bit as u32),
                bit: bit as u8,
            }));
        }
    }
    // Load materialised segment inputs.
    for (i, &id) in inputs.iter().enumerate() {
        stmts.push(KStmt::Op(KOp::LoadGlobal { dst: reg(id), input: i as u32 }));
    }
    cg.gen_stmts(program.stmts(), &mut stmts);
    // Store outputs.
    for (i, &id) in outputs.iter().enumerate() {
        stmts.push(KStmt::Op(KOp::StoreGlobal { output: i as u32, src: reg(id) }));
    }
    let kernel = Kernel {
        stmts,
        num_regs: cg.scratch_base + SCRATCH_SLOTS + cg.cse_regs,
        num_slots: cg.num_slots.max(1),
        num_inputs: inputs.len() as u32,
        num_outputs: outputs.len() as u32,
        num_sites: cg.num_sites,
    };
    Compiled { kernel, stats: cg.stats }
}

fn reg(id: StreamId) -> Reg {
    Reg(id.0)
}

fn mark_basis(e: &CcExpr, used: &mut [bool; 8]) {
    match e {
        CcExpr::Const(_) => {}
        CcExpr::Basis(k) => used[*k as usize] = true,
        CcExpr::Not(a) => mark_basis(a, used),
        CcExpr::And(a, b) | CcExpr::Or(a, b) => {
            mark_basis(a, used);
            mark_basis(b, used);
        }
    }
}

struct Codegen {
    du: DefUse,
    options: CodegenOptions,
    basis_reg_base: u32,
    scratch_base: u32,
    scratch_used: u32,
    num_slots: u32,
    num_sites: u32,
    /// Registers holding shared circuit nodes (allocated past scratch).
    cse_regs: u32,
    stats: CodegenStats,
    circuit_cache: HashMap<bitgen_regex::ByteSet, CcExpr>,
}

/// Scratch registers reserved between the basis block and the CSE pool
/// (circuit depth never approaches this).
const SCRATCH_SLOTS: u32 = 32;

impl Codegen {
    fn gen_stmts(&mut self, stmts: &[Stmt], out: &mut Vec<KStmt>) {
        let mut run: Vec<Op> = Vec::new();
        for stmt in stmts {
            match stmt {
                Stmt::Op(op) => run.push(op.clone()),
                Stmt::If { cond, body } => {
                    self.flush_run(&mut run, out);
                    let mut kbody = Vec::new();
                    self.gen_stmts(body, &mut kbody);
                    out.push(KStmt::If { cond: reg(*cond), body: kbody });
                }
                Stmt::While { cond, body } => {
                    self.flush_run(&mut run, out);
                    let site = self.num_sites;
                    self.num_sites += 1;
                    let mut kbody = Vec::new();
                    self.gen_stmts(body, &mut kbody);
                    out.push(KStmt::While { cond: reg(*cond), body: kbody, site });
                }
            }
        }
        self.flush_run(&mut run, out);
    }

    fn flush_run(&mut self, run: &mut Vec<Op>, out: &mut Vec<KStmt>) {
        if run.is_empty() {
            return;
        }
        let block = std::mem::take(run);
        self.gen_block(&block, out);
    }

    /// Schedules the shifts of a straight-line block into barrier groups
    /// and emits the block.
    fn gen_block(&mut self, block: &[Op], out: &mut Vec<KStmt>) {
        let groups = self.schedule_shifts(block);
        // anchor position -> group index
        let mut anchored: HashMap<usize, usize> = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            anchored.insert(g.anchor, gi);
        }
        // positions of shifts swallowed by some group
        let mut swallowed: HashMap<usize, ()> = HashMap::new();
        for g in &groups {
            for &(pos, _) in &g.members {
                swallowed.insert(pos, ());
            }
        }
        // Class-circuit CSE is scoped to the block: inside one block there
        // is no control flow, so every cached node's definition dominates
        // its reuses.
        let mut cse: HashMap<CcExpr, Reg> = HashMap::new();
        for (i, op) in block.iter().enumerate() {
            if let Some(&gi) = anchored.get(&i) {
                self.emit_group(&groups[gi], block, out);
            }
            if swallowed.contains_key(&i) {
                continue; // emitted by its group
            }
            self.emit_op(op, out, &mut cse);
        }
    }

    /// Greedy shift scheduling (§5.3): walk the block in order, merging
    /// each shift into the open group when legal, else starting a new one.
    fn schedule_shifts(&mut self, block: &[Op]) -> Vec<ShiftGroup> {
        // Definition positions per variable (all of them, in order).
        let mut defs: HashMap<StreamId, Vec<usize>> = HashMap::new();
        for (i, op) in block.iter().enumerate() {
            defs.entry(op.dst()).or_default().push(i);
        }
        let latest_def_before = |v: StreamId, i: usize| -> Option<usize> {
            defs.get(&v)?.iter().copied().rfind(|&d| d < i)
        };
        let mut groups: Vec<ShiftGroup> = Vec::new();
        for (i, op) in block.iter().enumerate() {
            let (src, _amount) = match op {
                Op::Advance { src, amount, .. } => (*src, *amount),
                Op::Retreat { src, amount, .. } => (*src, *amount),
                _ => continue,
            };
            self.stats.shifts += 1;
            let dst = op.dst();
            let mergeable = groups.last().is_some_and(|g| {
                if g.members.len() >= self.options.merge_size {
                    return false;
                }
                let p = g.anchor;
                // (1) operand ready at the anchor: its latest definition
                // before the shift precedes the anchor, i.e. it is not
                // (re)defined in [p, i).
                let ready = match latest_def_before(src, i) {
                    None => true, // defined outside the block
                    Some(d) => d < p,
                };
                if !ready {
                    return false;
                }
                // (2) hoisting the definition of dst to the anchor is
                // unobservable: dst defined exactly once in the whole
                // program and neither read nor written in [p, i).
                if self.du.def_count(dst) != 1 {
                    return false;
                }
                !block[p..i].iter().any(|o| o.dst() == dst || o.sources().contains(&dst))
            });
            if mergeable {
                let g = groups.last_mut().expect("mergeable implies a group exists");
                g.members.push((i, op.clone()));
            } else {
                groups.push(ShiftGroup { anchor: i, members: vec![(i, op.clone())] });
            }
        }
        groups
    }

    /// Emits one shift group: distinct sources go to shared memory once,
    /// one barrier, all shifted reads, one barrier.
    fn emit_group(&mut self, group: &ShiftGroup, _block: &[Op], out: &mut Vec<KStmt>) {
        self.stats.shift_groups += 1;
        let mut slot_of: HashMap<StreamId, Slot> = HashMap::new();
        for (_, op) in &group.members {
            let src = op.sources()[0];
            if slot_of.contains_key(&src) {
                // Redundant-copy elimination: the same unshifted stream is
                // stored once and read at several distances.
                self.stats.smem_copies_saved += 1;
                continue;
            }
            let slot = Slot(slot_of.len() as u32);
            slot_of.insert(src, slot);
            out.push(KStmt::Op(KOp::SmemStore { slot, src: reg(src) }));
        }
        self.num_slots = self.num_slots.max(slot_of.len() as u32);
        out.push(KStmt::Op(KOp::Barrier));
        for (_, op) in &group.members {
            let (dst, src, shift) = match op {
                Op::Advance { dst, src, amount } => (*dst, *src, *amount as i64),
                Op::Retreat { dst, src, amount } => (*dst, *src, -(*amount as i64)),
                other => unreachable!("non-shift {other:?} in group"),
            };
            out.push(KStmt::Op(KOp::ShiftRead { dst: reg(dst), slot: slot_of[&src], shift }));
        }
        out.push(KStmt::Op(KOp::Barrier));
    }

    fn emit_op(&mut self, op: &Op, out: &mut Vec<KStmt>, cse: &mut HashMap<CcExpr, Reg>) {
        match op {
            Op::MatchCc { dst, class } => {
                let circuit = self
                    .circuit_cache
                    .entry(*class)
                    .or_insert_with(|| compile_class(class))
                    .clone();
                if self.options.class_cse {
                    let root = self.emit_circuit_cse(&circuit, out, cse);
                    out.push(KStmt::Op(KOp::Copy { dst: reg(*dst), a: root }));
                } else {
                    let used = self.emit_circuit(&circuit, reg(*dst), 0, out);
                    self.scratch_used = self.scratch_used.max(used);
                }
            }
            Op::And { dst, a, b } => {
                out.push(KStmt::Op(KOp::And { dst: reg(*dst), a: reg(*a), b: reg(*b) }))
            }
            Op::Or { dst, a, b } => {
                out.push(KStmt::Op(KOp::Or { dst: reg(*dst), a: reg(*a), b: reg(*b) }))
            }
            Op::Add { dst, a, b } => {
                let site = self.num_sites;
                self.num_sites += 1;
                out.push(KStmt::Op(KOp::Add { dst: reg(*dst), a: reg(*a), b: reg(*b), site }))
            }
            Op::Xor { dst, a, b } => {
                out.push(KStmt::Op(KOp::Xor { dst: reg(*dst), a: reg(*a), b: reg(*b) }))
            }
            Op::Not { dst, src } => {
                out.push(KStmt::Op(KOp::Not { dst: reg(*dst), a: reg(*src) }))
            }
            Op::Assign { dst, src } => {
                out.push(KStmt::Op(KOp::Copy { dst: reg(*dst), a: reg(*src) }))
            }
            Op::Zero { dst } => out.push(KStmt::Op(KOp::Const { dst: reg(*dst), ones: false })),
            Op::Ones { dst } => out.push(KStmt::Op(KOp::Const { dst: reg(*dst), ones: true })),
            Op::Advance { dst, src, amount } => {
                // Ungrouped path (never taken from gen_block, which groups
                // every shift; kept for direct callers).
                self.emit_group(
                    &ShiftGroup {
                        anchor: 0,
                        members: vec![(0, Op::Advance { dst: *dst, src: *src, amount: *amount })],
                    },
                    &[],
                    out,
                );
            }
            Op::Retreat { dst, src, amount } => {
                self.emit_group(
                    &ShiftGroup {
                        anchor: 0,
                        members: vec![(0, Op::Retreat { dst: *dst, src: *src, amount: *amount })],
                    },
                    &[],
                    out,
                );
            }
        }
    }

    /// Expands a circuit with hash-consing: every distinct sub-circuit is
    /// computed once per block and its register reused — the cross-class
    /// sharing Parabix performs (lowercase letters share the `¬b0∧b1∧b2`
    /// prefix, digit tests share range comparisons, ...).
    fn emit_circuit_cse(
        &mut self,
        e: &CcExpr,
        out: &mut Vec<KStmt>,
        cse: &mut HashMap<CcExpr, Reg>,
    ) -> Reg {
        if let CcExpr::Basis(k) = e {
            return Reg(self.basis_reg_base + *k as u32);
        }
        if let Some(&r) = cse.get(e) {
            self.stats.gates_shared += e.gate_count().max(1);
            return r;
        }
        let r = match e {
            CcExpr::Basis(_) => unreachable!("handled above"),
            CcExpr::Const(b) => {
                let r = self.alloc_cse_reg();
                out.push(KStmt::Op(KOp::Const { dst: r, ones: *b }));
                r
            }
            CcExpr::Not(a) => {
                let ra = self.emit_circuit_cse(a, out, cse);
                let r = self.alloc_cse_reg();
                out.push(KStmt::Op(KOp::Not { dst: r, a: ra }));
                r
            }
            CcExpr::And(a, b) | CcExpr::Or(a, b) => {
                let ra = self.emit_circuit_cse(a, out, cse);
                let rb = self.emit_circuit_cse(b, out, cse);
                let r = self.alloc_cse_reg();
                let kop = if matches!(e, CcExpr::And(..)) {
                    KOp::And { dst: r, a: ra, b: rb }
                } else {
                    KOp::Or { dst: r, a: ra, b: rb }
                };
                out.push(KStmt::Op(kop));
                r
            }
        };
        cse.insert(e.clone(), r);
        r
    }

    fn alloc_cse_reg(&mut self) -> Reg {
        let r = Reg(self.scratch_base + SCRATCH_SLOTS + self.cse_regs);
        self.cse_regs += 1;
        r
    }

    /// Expands a character-class circuit into register ops; returns the
    /// number of scratch registers used.
    fn emit_circuit(&mut self, e: &CcExpr, target: Reg, depth: u32, out: &mut Vec<KStmt>) -> u32 {
        match e {
            CcExpr::Const(b) => {
                out.push(KStmt::Op(KOp::Const { dst: target, ones: *b }));
                depth
            }
            CcExpr::Basis(k) => {
                out.push(KStmt::Op(KOp::Copy {
                    dst: target,
                    a: Reg(self.basis_reg_base + *k as u32),
                }));
                depth
            }
            CcExpr::Not(a) => {
                let used = self.emit_circuit(a, target, depth, out);
                out.push(KStmt::Op(KOp::Not { dst: target, a: target }));
                used
            }
            CcExpr::And(a, b) | CcExpr::Or(a, b) => {
                let scratch = Reg(self.scratch_base + depth);
                let u1 = self.emit_circuit(a, target, depth + 1, out);
                let u2 = self.emit_circuit(b, scratch, depth + 1, out);
                let kop = if matches!(e, CcExpr::And(..)) {
                    KOp::And { dst: target, a: target, b: scratch }
                } else {
                    KOp::Or { dst: target, a: target, b: scratch }
                };
                out.push(KStmt::Op(kop));
                u1.max(u2).max(depth + 1)
            }
        }
    }
}

struct ShiftGroup {
    /// Block position the group is anchored at (its first shift).
    anchor: usize,
    /// `(original position, op)` of each member, in program order.
    members: Vec<(usize, Op)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgen_ir::lower;
    use bitgen_passes::rebalance;
    use bitgen_regex::parse;

    fn kernel_for(pattern: &str, merge: usize) -> Compiled {
        let prog = lower(&parse(pattern).unwrap());
        compile(&prog, &[], &[], &CodegenOptions { merge_size: merge, ..CodegenOptions::default() })
    }

    #[test]
    fn single_shift_costs_two_barriers() {
        let c = kernel_for("ab", 8);
        // Three shifts total (two advances + ends retreat); merged when
        // possible but at least one group ⇒ at least two barriers.
        assert!(c.kernel.barrier_count() >= 2);
        assert_eq!(c.stats.shifts, 3);
    }

    #[test]
    fn merge_size_one_gives_group_per_shift() {
        let c = kernel_for("abcdef", 1);
        assert_eq!(c.stats.shift_groups, c.stats.shifts);
    }

    #[test]
    fn larger_merge_size_reduces_groups_after_rebalancing() {
        // Without rebalancing the concatenation chain is serial: every
        // shift depends on the previous AND and nothing merges — which is
        // precisely why the paper pairs merging with Shift Rebalancing.
        let mut prog = lower(&parse("abcdefgh").unwrap());
        rebalance(&mut prog);
        let small = compile(&prog, &[], &[], &CodegenOptions { merge_size: 1, ..CodegenOptions::default() });
        let large = compile(&prog, &[], &[], &CodegenOptions { merge_size: 8, ..CodegenOptions::default() });
        assert!(large.stats.shift_groups < small.stats.shift_groups);
        assert_eq!(small.stats.shifts, large.stats.shifts);
        assert!(large.kernel.barrier_count() < small.kernel.barrier_count());
    }

    #[test]
    fn unbalanced_chain_cannot_merge() {
        let small = kernel_for("abcdefgh", 1);
        let large = kernel_for("abcdefgh", 8);
        assert_eq!(large.stats.shift_groups, small.stats.shift_groups);
    }

    #[test]
    fn rebalanced_programs_merge_better() {
        // The Fig. 8/9 effect: rebalancing makes shifts schedulable, so
        // with a generous merge size the group count should not exceed the
        // unbalanced one.
        let mut prog = lower(&parse("abbbb").unwrap());
        let before = compile(&prog, &[], &[], &CodegenOptions { merge_size: 16, ..CodegenOptions::default() });
        rebalance(&mut prog);
        let after = compile(&prog, &[], &[], &CodegenOptions { merge_size: 16, ..CodegenOptions::default() });
        assert!(
            after.stats.shift_groups <= before.stats.shift_groups,
            "rebalanced {} vs original {}",
            after.stats.shift_groups,
            before.stats.shift_groups
        );
    }

    #[test]
    fn shared_source_copies_saved() {
        // /abb/ rebalanced: b-class shifted by 1 and 2 → one smem copy.
        let mut prog = lower(&parse("abb").unwrap());
        rebalance(&mut prog);
        let c = compile(&prog, &[], &[], &CodegenOptions { merge_size: 16, ..CodegenOptions::default() });
        assert!(
            c.stats.smem_copies_saved >= 1,
            "expected a shared smem copy, got {:?}",
            c.stats
        );
    }

    #[test]
    fn loops_numbered() {
        let c = kernel_for("a(bc)*d", 8);
        assert_eq!(c.kernel.num_sites, 1);
        let c2 = kernel_for("a((bc)*d)*e", 8);
        assert_eq!(c2.kernel.num_sites, 2);
    }

    #[test]
    fn outputs_stored_and_inputs_loaded() {
        let prog = lower(&parse("ab").unwrap());
        let extra_in = bitgen_ir::StreamId(0);
        let c = compile(&prog, &[extra_in], &[], &CodegenOptions::default());
        assert_eq!(c.kernel.num_inputs, 1);
        assert_eq!(c.kernel.num_outputs, 1);
        let mut loads = 0;
        let mut stores = 0;
        c.kernel.for_each_op(&mut |op| match op {
            KOp::LoadGlobal { .. } => loads += 1,
            KOp::StoreGlobal { .. } => stores += 1,
            _ => {}
        });
        assert_eq!(loads, 1);
        assert_eq!(stores, 1);
    }

    #[test]
    fn basis_preloaded_once() {
        let c = kernel_for("[a-z][0-9]", 8);
        let mut basis_loads = 0;
        c.kernel.for_each_op(&mut |op| {
            if matches!(op, KOp::LoadBasis { .. }) {
                basis_loads += 1;
            }
        });
        assert!(basis_loads <= 8, "each basis bit loads at most once: {basis_loads}");
        assert!(basis_loads > 0);
    }

    #[test]
    fn smem_slots_bounded_by_merge_size() {
        let c = kernel_for("abcdefghij", 4);
        assert!(c.kernel.num_slots <= 4);
    }

    #[test]
    fn class_cse_shares_gates() {
        // Lowercase letters share most of their basis prefix; digits share
        // range comparisons.
        let prog = lower(&parse("[a-m][n-z][a-z][0-9][0-4]").unwrap());
        let with = compile(&prog, &[], &[], &CodegenOptions::default());
        let without = compile(
            &prog,
            &[],
            &[],
            &CodegenOptions { class_cse: false, ..CodegenOptions::default() },
        );
        assert!(with.stats.gates_shared > 0);
        assert!(
            with.kernel.op_count() < without.kernel.op_count(),
            "CSE must shrink the kernel: {} vs {}",
            with.kernel.op_count(),
            without.kernel.op_count()
        );
    }

    #[test]
    fn zbs_guards_survive_codegen() {
        use bitgen_passes::{insert_zero_skips, ZbsConfig};
        let mut prog = lower(&parse("abcdefgh").unwrap());
        insert_zero_skips(&mut prog, ZbsConfig::default());
        let c = compile(&prog, &[], &[], &CodegenOptions::default());
        fn has_if(stmts: &[KStmt]) -> bool {
            stmts.iter().any(|s| match s {
                KStmt::If { .. } => true,
                KStmt::While { body, .. } => has_if(body),
                KStmt::Op(_) => false,
            })
        }
        assert!(has_if(&c.kernel.stmts));
    }
}

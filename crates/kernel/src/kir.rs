//! The kernel IR: what BitGen "emits" instead of CUDA C.
//!
//! A [`Kernel`] is the device function one CTA executes. Every register
//! holds one machine word (W = 32 bits) per thread; cross-thread data
//! only ever moves through shared-memory slots guarded by barriers —
//! exactly the discipline the paper's generated CUDA follows. The SIMT
//! emulator in `bitgen-gpu` executes this IR and *checks* the barrier
//! discipline rather than assuming it.

use std::fmt;

/// Machine word size in bits (the GPU word size of the paper).
pub const WORD_BITS: usize = 32;

/// A per-thread register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A shared-memory slot holding one word per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot(pub u32);

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smem{}", self.0)
    }
}

/// A kernel instruction, executed by all T threads of the CTA in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KOp {
    /// Load this thread's window word of basis bitstream `bit` (0..8).
    LoadBasis {
        /// Destination register.
        dst: Reg,
        /// Basis stream index (0 = most significant bit of each byte).
        bit: u8,
    },
    /// Load this thread's window word of materialised global stream
    /// `input` (a segment boundary stream).
    LoadGlobal {
        /// Destination register.
        dst: Reg,
        /// Index into the kernel's input-stream table.
        input: u32,
    },
    /// Load a constant word (all-zeros or all-ones).
    Const {
        /// Destination register.
        dst: Reg,
        /// `true` for all-ones.
        ones: bool,
    },
    /// `dst = ~a`.
    Not {
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Reg,
    },
    /// `dst = a & b`.
    And {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = a | b`.
    Or {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = a + b`: window-wide long addition (a CTA-level carry scan
    /// on real hardware). Carries are a cross-block dependency: the
    /// emulator reports the longest carry-feeding run via the op's
    /// dynamic `site`, exactly like loop trip counts.
    Add {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Dynamic-site index (pre-order over `while`s and `add`s).
        site: u32,
    },
    /// `dst = a ^ b`.
    Xor {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = a`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        a: Reg,
    },
    /// Publish this thread's word of `src` to shared memory.
    SmemStore {
        /// Slot to write.
        slot: Slot,
        /// Source register.
        src: Reg,
    },
    /// CTA-wide barrier.
    Barrier,
    /// Read a window-level shifted word from a slot: positive `shift`
    /// is the paper's `>>` (marker advance; data comes from lower
    /// thread indices), negative its `<<`.
    ///
    /// Requires a barrier between the slot's stores and this read; the
    /// emulator enforces it.
    ShiftRead {
        /// Destination register.
        dst: Reg,
        /// Slot published by a preceding [`KOp::SmemStore`].
        slot: Slot,
        /// Signed shift distance in bits.
        shift: i64,
    },
    /// Store this thread's word of `src` as output stream `output`.
    StoreGlobal {
        /// Index into the kernel's output-stream table.
        output: u32,
        /// Source register.
        src: Reg,
    },
}

impl KOp {
    /// Destination register, if the op writes one.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            KOp::LoadBasis { dst, .. }
            | KOp::LoadGlobal { dst, .. }
            | KOp::Const { dst, .. }
            | KOp::Not { dst, .. }
            | KOp::And { dst, .. }
            | KOp::Or { dst, .. }
            | KOp::Add { dst, .. }
            | KOp::Xor { dst, .. }
            | KOp::Copy { dst, .. }
            | KOp::ShiftRead { dst, .. } => Some(dst),
            KOp::SmemStore { .. } | KOp::Barrier | KOp::StoreGlobal { .. } => None,
        }
    }
}

/// A kernel statement: an instruction or block-wide control flow.
///
/// Conditions are *CTA-wide*: the body runs iff any thread's word of
/// `cond` over the current window is non-zero (the paper's block-wide
/// `atomicOr` reduction; no warp divergence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KStmt {
    /// A plain instruction.
    Op(KOp),
    /// Zero-block-skipping guard.
    If {
        /// Condition register (reduced CTA-wide).
        cond: Reg,
        /// Guarded body.
        body: Vec<KStmt>,
    },
    /// Fixpoint loop.
    While {
        /// Condition register (reduced CTA-wide each trip).
        cond: Reg,
        /// Loop body.
        body: Vec<KStmt>,
        /// Dynamic-site index (pre-order over `while`s and `add`s); the
        /// emulator reports this loop's trip count under it.
        site: u32,
    },
}

/// A complete device function for one CTA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// The statement list executed once per window iteration.
    pub stmts: Vec<KStmt>,
    /// Number of registers per thread.
    pub num_regs: u32,
    /// Number of shared-memory slots (each T words).
    pub num_slots: u32,
    /// Number of materialised input streams ([`KOp::LoadGlobal`] indices).
    pub num_inputs: u32,
    /// Number of output streams ([`KOp::StoreGlobal`] indices).
    pub num_outputs: u32,
    /// Number of dynamic sites (`while` loops and `add` carries) in
    /// structural pre-order; the emulator reports a per-site dynamic
    /// measure (trips / longest carry run) under this numbering, matching
    /// the overlap analysis.
    pub num_sites: u32,
}

impl Kernel {
    /// Total instructions (not counting control-flow headers).
    pub fn op_count(&self) -> usize {
        fn walk(stmts: &[KStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    KStmt::Op(_) => 1,
                    KStmt::If { body, .. } | KStmt::While { body, .. } => walk(body),
                })
                .sum()
        }
        walk(&self.stmts)
    }

    /// Number of [`KOp::Barrier`]s in the static code.
    pub fn barrier_count(&self) -> usize {
        let mut n = 0;
        self.for_each_op(&mut |op| {
            if matches!(op, KOp::Barrier) {
                n += 1;
            }
        });
        n
    }

    /// Visits every instruction, entering control-flow bodies.
    pub fn for_each_op<F: FnMut(&KOp)>(&self, f: &mut F) {
        fn walk<F: FnMut(&KOp)>(stmts: &[KStmt], f: &mut F) {
            for s in stmts {
                match s {
                    KStmt::Op(op) => f(op),
                    KStmt::If { body, .. } | KStmt::While { body, .. } => walk(body, f),
                }
            }
        }
        walk(&self.stmts, f);
    }

    /// Shared memory bytes required per CTA for `threads` threads.
    pub fn smem_bytes(&self, threads: usize) -> usize {
        self.num_slots as usize * threads * (WORD_BITS / 8)
    }

    /// Estimates the number of physical registers a liveness-based
    /// allocator would need: the maximum number of simultaneously live
    /// virtual registers.
    ///
    /// The kernel IR uses one virtual register per stream for clarity; a
    /// real register allocator reuses registers once values die, and the
    /// paper's `-maxrregcount` tuning presumes exactly that. Registers
    /// touched inside a loop are conservatively kept live across the whole
    /// loop (loop-carried values are live between trips).
    pub fn max_live_regs(&self) -> u32 {
        use std::collections::HashMap;
        // Interval per register over a linearised position space.
        let mut intervals: HashMap<u32, (u32, u32)> = HashMap::new();
        fn touch(intervals: &mut HashMap<u32, (u32, u32)>, r: Reg, pos: u32) {
            let e = intervals.entry(r.0).or_insert((pos, pos));
            e.0 = e.0.min(pos);
            e.1 = e.1.max(pos);
        }
        fn touch_op(intervals: &mut HashMap<u32, (u32, u32)>, op: &KOp, pos: u32) {
            if let Some(d) = op.dst() {
                touch(intervals, d, pos);
            }
            match *op {
                KOp::Not { a, .. }
                | KOp::Copy { a, .. }
                | KOp::SmemStore { src: a, .. }
                | KOp::StoreGlobal { src: a, .. } => touch(intervals, a, pos),
                KOp::And { a, b, .. }
                | KOp::Or { a, b, .. }
                | KOp::Add { a, b, .. }
                | KOp::Xor { a, b, .. } => {
                    touch(intervals, a, pos);
                    touch(intervals, b, pos);
                }
                _ => {}
            }
        }
        fn walk(
            stmts: &[KStmt],
            pos: &mut u32,
            intervals: &mut HashMap<u32, (u32, u32)>,
        ) {
            for s in stmts {
                *pos += 1;
                match s {
                    KStmt::Op(op) => touch_op(intervals, op, *pos),
                    KStmt::If { cond, body } | KStmt::While { cond, body, .. } => {
                        let start = *pos;
                        touch(intervals, *cond, start);
                        walk(body, pos, intervals);
                        let end = *pos;
                        // Any register live anywhere in the body is kept
                        // live across the whole body (loop-carried values
                        // are live between trips).
                        for iv in intervals.values_mut() {
                            if iv.1 >= start && iv.0 <= end {
                                iv.0 = iv.0.min(start);
                                iv.1 = iv.1.max(end);
                            }
                        }
                    }
                }
            }
        }
        let mut pos = 0;
        walk(&self.stmts, &mut pos, &mut intervals);
        // Sweep the interval endpoints for the maximum overlap.
        let mut events: Vec<(u32, i32)> = Vec::with_capacity(intervals.len() * 2);
        for (_, (s, e)) in intervals {
            events.push((s, 1));
            events.push((e + 1, -1));
        }
        events.sort_unstable();
        let mut live = 0i32;
        let mut max = 0i32;
        for (_, d) in events {
            live += d;
            max = max.max(live);
        }
        max.max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Kernel {
        Kernel {
            stmts: vec![
                KStmt::Op(KOp::LoadBasis { dst: Reg(0), bit: 0 }),
                KStmt::Op(KOp::SmemStore { slot: Slot(0), src: Reg(0) }),
                KStmt::Op(KOp::Barrier),
                KStmt::Op(KOp::ShiftRead { dst: Reg(1), slot: Slot(0), shift: 1 }),
                KStmt::Op(KOp::Barrier),
                KStmt::While {
                    cond: Reg(1),
                    body: vec![KStmt::Op(KOp::And { dst: Reg(1), a: Reg(1), b: Reg(0) })],
                    site: 0,
                },
                KStmt::Op(KOp::StoreGlobal { output: 0, src: Reg(1) }),
            ],
            num_regs: 2,
            num_slots: 1,
            num_inputs: 0,
            num_outputs: 1,
            num_sites: 1,
        }
    }

    #[test]
    fn counts() {
        let k = sample();
        assert_eq!(k.op_count(), 7);
        assert_eq!(k.barrier_count(), 2);
        assert_eq!(k.smem_bytes(512), 512 * 4);
    }

    #[test]
    fn dst_classification() {
        assert_eq!(KOp::Barrier.dst(), None);
        assert_eq!(KOp::SmemStore { slot: Slot(0), src: Reg(3) }.dst(), None);
        assert_eq!(KOp::Copy { dst: Reg(5), a: Reg(1) }.dst(), Some(Reg(5)));
        assert_eq!(
            KOp::ShiftRead { dst: Reg(2), slot: Slot(1), shift: -4 }.dst(),
            Some(Reg(2))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Slot(2).to_string(), "smem2");
    }
}
